#include "storage/store.h"

#include <algorithm>

#include "rdf/vocab.h"

namespace rdfref {
namespace storage {

namespace {

struct OrderSpo {
  bool operator()(const rdf::Triple& a, const rdf::Triple& b) const {
    if (a.s != b.s) return a.s < b.s;
    if (a.p != b.p) return a.p < b.p;
    return a.o < b.o;
  }
};
struct OrderPso {
  bool operator()(const rdf::Triple& a, const rdf::Triple& b) const {
    if (a.p != b.p) return a.p < b.p;
    if (a.s != b.s) return a.s < b.s;
    return a.o < b.o;
  }
};
struct OrderPos {
  bool operator()(const rdf::Triple& a, const rdf::Triple& b) const {
    if (a.p != b.p) return a.p < b.p;
    if (a.o != b.o) return a.o < b.o;
    return a.s < b.s;
  }
};
struct OrderOsp {
  bool operator()(const rdf::Triple& a, const rdf::Triple& b) const {
    if (a.o != b.o) return a.o < b.o;
    if (a.s != b.s) return a.s < b.s;
    return a.p < b.p;
  }
};

// Range of `index` whose triples match every bound field of the pattern
// that participates in the index prefix covered by `lo`/`hi`.
template <typename Order>
std::pair<const rdf::Triple*, const rdf::Triple*> PrefixRange(
    const std::vector<rdf::Triple>& index, const rdf::Triple& lo,
    const rdf::Triple& hi) {
  auto begin = std::lower_bound(index.begin(), index.end(), lo, Order());
  auto end = std::upper_bound(index.begin(), index.end(), hi, Order());
  if (begin >= end) return {nullptr, nullptr};
  return {&*begin, &*begin + (end - begin)};
}

// Galloping lower_bound: first i in [from, n) with base[i] >= key.
// Probes from..from+1, +2, +4, ... then binary-searches the bracketed gap,
// so a lookup `gap` positions past the hint costs O(log gap) comparisons.
template <typename Order>
size_t GallopLowerBound(const rdf::Triple* base, size_t from, size_t n,
                        const rdf::Triple& key) {
  Order less;
  size_t lo = from, hi = from, step = 1;
  while (hi < n && less(base[hi], key)) {
    lo = hi + 1;
    hi = from + step;
    step *= 2;
  }
  if (hi > n) hi = n;
  return static_cast<size_t>(
      std::lower_bound(base + lo, base + hi, key, less) - base);
}

// Galloping upper_bound: first i in [from, n) with base[i] > key.
template <typename Order>
size_t GallopUpperBound(const rdf::Triple* base, size_t from, size_t n,
                        const rdf::Triple& key) {
  Order less;
  size_t lo = from, hi = from, step = 1;
  while (hi < n && !less(key, base[hi])) {
    lo = hi + 1;
    hi = from + step;
    step *= 2;
  }
  if (hi > n) hi = n;
  return static_cast<size_t>(
      std::upper_bound(base + lo, base + hi, key, less) - base);
}

// PrefixRange resumed from a hint: identical result, found by galloping
// forward from the previous lookup's begin offset when that offset is
// still a valid lower fence for the new prefix (everything before it
// compares below `lo`). Repeated lookups of the same prefix keep the
// fence, so they cost O(1) probes; a backward or cross-index hint falls
// back to galloping from 0, which is within a constant of the plain
// binary search. The hint is always rewritten to the returned range.
template <typename Order>
std::pair<const rdf::Triple*, const rdf::Triple*> PrefixRangeHinted(
    const std::vector<rdf::Triple>& index, const rdf::Triple& lo,
    const rdf::Triple& hi, RangeHint* hint) {
  const rdf::Triple* base = index.data();
  const size_t n = index.size();
  size_t from = 0;
  if (hint->index == &index && hint->pos <= n &&
      (hint->pos == 0 || Order()(base[hint->pos - 1], lo))) {
    from = hint->pos;
  }
  const size_t begin = GallopLowerBound<Order>(base, from, n, lo);
  const size_t end = GallopUpperBound<Order>(base, begin, n, hi);
  hint->index = &index;
  hint->pos = begin;
  if (begin >= end) return {nullptr, nullptr};
  return {base + begin, base + end};
}

// Dispatches to the hinted or the plain search per index + prefix pair.
template <typename Order>
std::pair<const rdf::Triple*, const rdf::Triple*> PrefixRangeImpl(
    const std::vector<rdf::Triple>& index, const rdf::Triple& lo,
    const rdf::Triple& hi, RangeHint* hint) {
  if (hint == nullptr) return PrefixRange<Order>(index, lo, hi);
  return PrefixRangeHinted<Order>(index, lo, hi, hint);
}

}  // namespace

Store::Store(const rdf::Graph& graph)
    : Store(&graph.dict(), std::vector<rdf::Triple>(graph.triples().begin(),
                                                    graph.triples().end())) {}

Store::Store(const rdf::Dictionary* dict, std::vector<rdf::Triple> triples)
    : dict_(dict), spo_(std::move(triples)) {
  std::sort(spo_.begin(), spo_.end(), OrderSpo());
  spo_.erase(std::unique(spo_.begin(), spo_.end()), spo_.end());
  pso_ = spo_;
  std::sort(pso_.begin(), pso_.end(), OrderPso());
  pos_ = spo_;
  std::sort(pos_.begin(), pos_.end(), OrderPos());
  osp_ = spo_;
  std::sort(osp_.begin(), osp_.end(), OrderOsp());

  // ANALYZE: exact statistics from one pass over the clustered indexes.
  stats_.total_triples_ = spo_.size();
  for (size_t i = 0; i < spo_.size(); ++i) {
    if (i == 0 || spo_[i].s != spo_[i - 1].s) ++stats_.distinct_subjects_;
  }
  for (size_t i = 0; i < osp_.size(); ++i) {
    if (i == 0 || osp_[i].o != osp_[i - 1].o) ++stats_.distinct_objects_;
  }
  for (size_t i = 0; i < pso_.size(); ++i) {
    PropertyStats& ps = stats_.property_stats_[pso_[i].p];
    ++ps.count;
    if (i == 0 || pso_[i].p != pso_[i - 1].p || pso_[i].s != pso_[i - 1].s) {
      ++ps.distinct_subjects;
    }
  }
  for (size_t i = 0; i < pos_.size(); ++i) {
    if (i == 0 || pos_[i].p != pos_[i - 1].p || pos_[i].o != pos_[i - 1].o) {
      ++stats_.property_stats_[pos_[i].p].distinct_objects;
    }
    if (pos_[i].p == rdf::vocab::kTypeId) {
      ++stats_.class_cardinality_[pos_[i].o];
    }
  }

  // Attribute-pair distribution (demo step 1): subjects carrying both
  // properties, from the subject-clustered index. Wide subjects are capped
  // to keep this linear in practice.
  constexpr size_t kMaxPropsPerSubject = 24;
  std::vector<rdf::TermId> props;
  size_t begin = 0;
  auto flush = [&](size_t end) {
    props.clear();
    for (size_t k = begin; k < end; ++k) {
      if (props.empty() || props.back() != spo_[k].p) {
        props.push_back(spo_[k].p);
      }
    }
    if (props.size() > kMaxPropsPerSubject) {
      props.resize(kMaxPropsPerSubject);
    }
    for (size_t a = 0; a < props.size(); ++a) {
      for (size_t b = a + 1; b < props.size(); ++b) {
        ++stats_.subject_pair_counts_[Statistics::PairKey(props[a],
                                                          props[b])];
      }
    }
  };
  for (size_t i = 1; i <= spo_.size(); ++i) {
    if (i == spo_.size() || spo_[i].s != spo_[i - 1].s) {
      flush(i);
      begin = i;
    }
  }
}

Store::Range Store::EqualRange(rdf::TermId s, rdf::TermId p,
                               rdf::TermId o) const {
  return EqualRangeImpl(s, p, o, nullptr);
}

Store::Range Store::EqualRangeImpl(rdf::TermId s, rdf::TermId p,
                                   rdf::TermId o, RangeHint* hint) const {
  const bool bs = s != kAny, bp = p != kAny, bo = o != kAny;
  const rdf::TermId kMin = 0;
  const rdf::TermId kMax = static_cast<rdf::TermId>(-2);
  if (bs) {
    if (bp) {
      // (s p ?) or (s p o) on SPO.
      rdf::Triple lo(s, p, bo ? o : kMin), hi(s, p, bo ? o : kMax);
      return PrefixRangeImpl<OrderSpo>(spo_, lo, hi, hint);
    }
    if (bo) {
      // (s ? o) on OSP, prefix (o, s).
      rdf::Triple lo(s, kMin, o), hi(s, kMax, o);
      return PrefixRangeImpl<OrderOsp>(osp_, lo, hi, hint);
    }
    // (s ? ?) on SPO.
    rdf::Triple lo(s, kMin, kMin), hi(s, kMax, kMax);
    return PrefixRangeImpl<OrderSpo>(spo_, lo, hi, hint);
  }
  if (bp) {
    if (bo) {
      // (? p o) on POS.
      rdf::Triple lo(kMin, p, o), hi(kMax, p, o);
      return PrefixRangeImpl<OrderPos>(pos_, lo, hi, hint);
    }
    // (? p ?) on PSO.
    rdf::Triple lo(kMin, p, kMin), hi(kMax, p, kMax);
    return PrefixRangeImpl<OrderPso>(pso_, lo, hi, hint);
  }
  if (bo) {
    // (? ? o) on OSP.
    rdf::Triple lo(kMin, kMin, o), hi(kMax, kMax, o);
    return PrefixRangeImpl<OrderOsp>(osp_, lo, hi, hint);
  }
  // (? ? ?): full scan.
  if (spo_.empty()) return {nullptr, nullptr};
  return {spo_.data(), spo_.data() + spo_.size()};
}

std::span<const rdf::Triple> Store::EqualRangeSpan(rdf::TermId s,
                                                   rdf::TermId p,
                                                   rdf::TermId o) const {
  Range r = EqualRange(s, p, o);
  return {r.first, static_cast<size_t>(r.second - r.first)};
}

std::span<const rdf::Triple> Store::EqualRangeSpanHinted(
    rdf::TermId s, rdf::TermId p, rdf::TermId o, RangeHint* hint) const {
  Range r = EqualRangeImpl(s, p, o, hint);
  return {r.first, static_cast<size_t>(r.second - r.first)};
}

bool Store::TryGetIntervalRange(rdf::TermId s, rdf::TermId p, rdf::TermId o,
                                int range_pos, rdf::TermId hi,
                                std::span<const rdf::Triple>* out) const {
  const rdf::TermId kMin = 0;
  const rdf::TermId kMax = static_cast<rdf::TermId>(-2);
  Range r{nullptr, nullptr};
  if (range_pos == 2) {
    // Object interval [o, hi].
    const bool bs = s != kAny;
    const bool bp = p != kAny;
    if (bs && bp) {
      r = PrefixRange<OrderSpo>(spo_, rdf::Triple(s, p, o),
                                rdf::Triple(s, p, hi));
    } else if (bp) {
      r = PrefixRange<OrderPos>(pos_, rdf::Triple(kMin, p, o),
                                rdf::Triple(kMax, p, hi));
    } else if (!bs) {
      r = PrefixRange<OrderOsp>(osp_, rdf::Triple(kMin, kMin, o),
                                rdf::Triple(kMax, kMax, hi));
    } else {
      return false;  // (s ? [lo..hi]): no order is contiguous
    }
  } else {
    // Property interval [p, hi].
    const bool bs = s != kAny;
    if (o != kAny) return false;  // (? [lo..hi] o): no order is contiguous
    if (bs) {
      r = PrefixRange<OrderSpo>(spo_, rdf::Triple(s, p, kMin),
                                rdf::Triple(s, hi, kMax));
    } else {
      r = PrefixRange<OrderPso>(pso_, rdf::Triple(kMin, p, kMin),
                                rdf::Triple(kMax, hi, kMax));
    }
  }
  *out = {r.first, static_cast<size_t>(r.second - r.first)};
  return true;
}

void Store::Scan(rdf::TermId s, rdf::TermId p, rdf::TermId o,
                 const std::function<void(const rdf::Triple&)>& fn) const {  // rdfref-check: allow(std-function)
  Range r = EqualRange(s, p, o);
  for (const rdf::Triple* t = r.first; t != r.second; ++t) fn(*t);
}

size_t Store::CountMatches(rdf::TermId s, rdf::TermId p, rdf::TermId o) const {
  Range r = EqualRange(s, p, o);
  return static_cast<size_t>(r.second - r.first);
}

bool Store::Contains(const rdf::Triple& t) const {
  return std::binary_search(spo_.begin(), spo_.end(), t, OrderSpo());
}

}  // namespace storage
}  // namespace rdfref
