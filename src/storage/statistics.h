#ifndef RDFREF_STORAGE_STATISTICS_H_
#define RDFREF_STORAGE_STATISTICS_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "rdf/dictionary.h"
#include "rdf/term.h"

namespace rdfref {
namespace storage {

/// \brief Per-property statistics kept by the store.
struct PropertyStats {
  uint64_t count = 0;             ///< triples with this property
  uint64_t distinct_subjects = 0; ///< |Π_s(σ_p)|
  uint64_t distinct_objects = 0;  ///< |Π_o(σ_p)|
};

/// \brief Database statistics: the inputs of the cost model and of the
/// demonstration's "visualize its statistics" step (value distributions for
/// subject, property and object).
///
/// All counts are exact (computed from the clustered indexes at load time),
/// as an RDBMS optimizer's ANALYZE would provide.
class Statistics {
 public:
  Statistics() = default;

  uint64_t total_triples() const { return total_triples_; }
  uint64_t distinct_subjects() const { return distinct_subjects_; }
  uint64_t distinct_properties() const { return property_stats_.size(); }
  uint64_t distinct_objects() const { return distinct_objects_; }

  /// \brief Stats for one property; zeros when the property is absent.
  PropertyStats ForProperty(rdf::TermId p) const {
    auto it = property_stats_.find(p);
    return it == property_stats_.end() ? PropertyStats{} : it->second;
  }

  /// \brief Number of instances of class c (explicit rdf:type triples).
  uint64_t ClassCardinality(rdf::TermId c) const {
    auto it = class_cardinality_.find(c);
    return it == class_cardinality_.end() ? 0 : it->second;
  }

  /// \brief Number of subjects carrying *both* properties (the demo's
  /// "value distributions ... for attribute pairs"; a characteristic-set
  /// style statistic correcting star-join estimates for correlation).
  uint64_t SubjectPairCount(rdf::TermId p1, rdf::TermId p2) const {
    auto it = subject_pair_counts_.find(PairKey(p1, p2));
    return it == subject_pair_counts_.end() ? 0 : it->second;
  }

  /// \brief The per-property table, for the demo's distribution display.
  const std::unordered_map<rdf::TermId, PropertyStats>& property_table()
      const {
    return property_stats_;
  }
  const std::unordered_map<rdf::TermId, uint64_t>& class_table() const {
    return class_cardinality_;
  }

  /// \brief Renders a human-readable statistics report (top-k properties and
  /// classes by cardinality) — demonstration step 1.
  std::string Report(const rdf::Dictionary& dict, size_t top_k = 10) const;

  /// \brief Accumulates another source's statistics into this one — the
  /// federation mediator's view of the union of its endpoints' data.
  ///
  /// Triple, class and attribute-pair counts add exactly. Distinct counts
  /// add as an *upper bound* (the mediator cannot see cross-endpoint
  /// duplicates), capped by the corresponding merged count: a relation of
  /// N triples cannot have more than N distinct subjects or objects, so
  /// without the cap repeated absorption could report estimator-breaking
  /// distincts that exceed the relation's own cardinality.
  void Absorb(const Statistics& other);

 private:
  friend class Store;

  static uint64_t PairKey(rdf::TermId p1, rdf::TermId p2) {
    if (p1 > p2) std::swap(p1, p2);
    return (static_cast<uint64_t>(p1) << 32) | p2;
  }

  uint64_t total_triples_ = 0;
  uint64_t distinct_subjects_ = 0;
  uint64_t distinct_objects_ = 0;
  std::unordered_map<rdf::TermId, PropertyStats> property_stats_;
  std::unordered_map<rdf::TermId, uint64_t> class_cardinality_;
  std::unordered_map<uint64_t, uint64_t> subject_pair_counts_;
};

}  // namespace storage
}  // namespace rdfref

#endif  // RDFREF_STORAGE_STATISTICS_H_
