#ifndef RDFREF_STORAGE_DELTA_STORE_H_
#define RDFREF_STORAGE_DELTA_STORE_H_

#include <memory>
#include <span>
#include <unordered_set>
#include <vector>

#include "common/annotations.h"
#include "rdf/triple.h"
#include "storage/store.h"
#include "storage/triple_source.h"

namespace rdfref {
namespace storage {

/// \brief An updatable overlay over an immutable base Store: inserted and
/// removed triples live in small side sets consulted by every scan.
///
/// This is how the Ref strategies stay cheap under updates (the paper's
/// §1: Ref needs no "effort to maintain the saturation"): an update is two
/// hash operations here, while Sat must chase consequences. The overlay is
/// meant to stay small relative to the base (scans filter the additions
/// linearly); Compact() seals base + overlay into a fresh Store when it
/// grows. For versioned multi-generation overlays with snapshot isolation
/// see storage/version_set.h, whose sealed runs build on the same overlay
/// semantics.
class DeltaStore : public TripleSource {
 public:
  /// \brief `base` must outlive the overlay.
  explicit DeltaStore(const Store* base) : base_(base) {}

  /// \brief Makes `t` visible; returns true when visibility changed.
  bool Insert(const rdf::Triple& t);

  /// \brief Hides `t`; returns true when visibility changed.
  bool Remove(const rdf::Triple& t);

  /// \brief True when `t` is currently visible.
  bool Contains(const rdf::Triple& t) const;

  /// \brief Materializes base + overlay into a fresh fully indexed Store
  /// (the "compact into a fresh Store when it grows" the overlay is
  /// designed around). The new store shares the base's dictionary, which
  /// must outlive it; the overlay itself is left untouched.
  std::unique_ptr<Store> Compact() const;

  void Scan(rdf::TermId s, rdf::TermId p, rdf::TermId o,
            const std::function<void(const rdf::Triple&)>& fn)
      const override;  // rdfref-check: allow(std-function)

  /// \brief Batch fast path: the base store's contiguous range is the whole
  /// answer (zero-copy) whenever the overlay cannot intersect the pattern —
  /// tracked conservatively by per-position presence sets, so a non-empty
  /// overlay only forces the buffered path on scans it may actually affect.
  RDFREF_BORROWS_FROM(base)
  bool TryGetRange(rdf::TermId s, rdf::TermId p, rdf::TermId o,
                   std::span<const rdf::Triple>* out) const override {
    if (OverlayMayAffect(s, p, o)) return false;
    return base_->TryGetRange(s, p, o, out);
  }

  /// \brief Hinted fast path: forwarded to the base store's galloping
  /// search while the overlay cannot intersect the pattern (the hint stays
  /// valid — it points into the immutable base indexes).
  RDFREF_BORROWS_FROM(base)
  bool TryGetRangeHinted(rdf::TermId s, rdf::TermId p, rdf::TermId o,
                         std::span<const rdf::Triple>* out,
                         RangeHint* hint) const override {
    if (OverlayMayAffect(s, p, o)) return false;
    return base_->TryGetRangeHinted(s, p, o, out, hint);
  }

  /// \brief Batch fallback: base range filtered by removals, then the
  /// matching additions — the same order Scan delivers.
  void ScanInto(rdf::TermId s, rdf::TermId p, rdf::TermId o,
                std::vector<rdf::Triple>* out) const override;

  size_t CountMatches(rdf::TermId s, rdf::TermId p,
                      rdf::TermId o) const override;
  const rdf::Dictionary& dict() const RDFREF_LIFETIME_BOUND override {
    return base_->dict();
  }

  const Store& base() const RDFREF_LIFETIME_BOUND { return *base_; }
  size_t num_added() const { return added_.size(); }
  size_t num_removed() const { return removed_.size(); }

 private:
  // Conservatively true when an addition or removal could change the
  // pattern's result set (presence sets may hold stale residue from erased
  // triples; they are cleared whenever their side set empties out).
  bool OverlayMayAffect(rdf::TermId s, rdf::TermId p, rdf::TermId o) const {
    return (!added_.empty() && added_presence_.MayMatch(s, p, o)) ||
           (!removed_.empty() && removed_presence_.MayMatch(s, p, o));
  }

  const Store* base_;
  std::unordered_set<rdf::Triple, rdf::TripleHash> added_;
  std::unordered_set<rdf::Triple, rdf::TripleHash> removed_;
  PatternPresence added_presence_;
  PatternPresence removed_presence_;
};

}  // namespace storage
}  // namespace rdfref

#endif  // RDFREF_STORAGE_DELTA_STORE_H_
