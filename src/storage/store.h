#ifndef RDFREF_STORAGE_STORE_H_
#define RDFREF_STORAGE_STORE_H_

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "common/annotations.h"
#include "rdf/dictionary.h"
#include "rdf/graph.h"
#include "rdf/triple.h"
#include "storage/statistics.h"
#include "storage/triple_source.h"

namespace rdfref {
namespace storage {

/// \brief RDBMS-style storage substrate: a dictionary-encoded triple table
/// with clustered permutation indexes.
///
/// This plays the role of the relational back-ends of the demonstration (the
/// paper evaluates reformulated queries "through performant RDBMSs"): a
/// single Triple(s, p, o) table, fully indexed so that any triple pattern is
/// answerable by a binary-searched range scan:
///   - SPO  serves  (s ? ?), (s p ?), (s p o)
///   - PSO  serves  (? p ?)
///   - POS  serves  (? p o)
///   - OSP  serves  (? ? o), (s ? o)
///
/// The store is read-only after Build; the Sat strategy rebuilds it from the
/// saturated graph (mirroring the paper's "materialize then query" setup).
/// The dictionary of the source graph must outlive the store.
class Store : public TripleSource {
 public:
  /// \brief Builds the table and all indexes from a graph.
  explicit Store(const rdf::Graph& graph);

  /// \brief Builds from triples already encoded against `dict` (used by
  /// the federation mediator, whose endpoints share one dictionary).
  Store(const rdf::Dictionary* dict, std::vector<rdf::Triple> triples);

  Store(const Store&) = delete;
  Store& operator=(const Store&) = delete;
  Store(Store&&) = default;
  Store& operator=(Store&&) = default;

  /// \brief Invokes `fn` on every triple matching the pattern; kAny
  /// wildcards any position. Legacy path — the engine drives the
  /// zero-overhead range API below.
  void Scan(rdf::TermId s, rdf::TermId p, rdf::TermId o,
            const std::function<void(const rdf::Triple&)>& fn) const override;  // rdfref-check: allow(std-function)

  /// \brief Zero-overhead range scan: every pattern is a binary-searched
  /// contiguous run of one clustered permutation (SPO/PSO/POS/OSP), so the
  /// matches come back as one span into the index — no callback, no copy.
  /// Valid for the store's lifetime (the store is immutable after build).
  std::span<const rdf::Triple> EqualRangeSpan(rdf::TermId s, rdf::TermId p,
                                              rdf::TermId o) const
      RDFREF_LIFETIME_BOUND;

  /// \brief Hinted range scan: identical result to EqualRangeSpan, found by
  /// galloping forward from the previous lookup's position when the hint is
  /// for the same permutation index and the new prefix is not below it
  /// (O(log gap) instead of O(log n) for the monotone lookup sequences a
  /// nested-loop join produces). A stale or backward hint falls back to the
  /// full binary search; the hint is updated to the returned range.
  std::span<const rdf::Triple> EqualRangeSpanHinted(rdf::TermId s,
                                                    rdf::TermId p,
                                                    rdf::TermId o,
                                                    RangeHint* hint) const
      RDFREF_LIFETIME_BOUND;

  /// \brief Batch fast path: always succeeds (see EqualRangeSpan).
  RDFREF_BORROWS_FROM(this)
  bool TryGetRange(rdf::TermId s, rdf::TermId p, rdf::TermId o,
                   std::span<const rdf::Triple>* out) const override {
    *out = EqualRangeSpan(s, p, o);
    return true;
  }

  /// \brief Hinted batch fast path (see EqualRangeSpanHinted).
  RDFREF_BORROWS_FROM(this)
  bool TryGetRangeHinted(rdf::TermId s, rdf::TermId p, rdf::TermId o,
                         std::span<const rdf::Triple>* out,
                         RangeHint* hint) const override {
    *out = hint == nullptr ? EqualRangeSpan(s, p, o)
                           : EqualRangeSpanHinted(s, p, o, hint);
    return true;
  }

  /// \brief Interval fast path for hierarchy-encoded atoms: succeeds when
  /// one clustered permutation stores the interval contiguously —
  ///   object interval   (s p [lo..hi]) on SPO, (? p [lo..hi]) on POS,
  ///                     (? ? [lo..hi]) on OSP;
  ///   property interval (s [lo..hi] ?) on SPO, (? [lo..hi] ?) on PSO.
  /// The remaining shapes — (s ? [lo..hi]) and (? [lo..hi] o) — interleave
  /// other ids inside every order and return false (buffered fallback).
  bool TryGetIntervalRange(rdf::TermId s, rdf::TermId p, rdf::TermId o,
                           int range_pos, rdf::TermId hi,
                           std::span<const rdf::Triple>* out) const override;

  /// \brief Exact number of triples matching the pattern (index-only).
  size_t CountMatches(rdf::TermId s, rdf::TermId p,
                      rdf::TermId o) const override;

  /// \brief Membership test for a fully bound triple.
  bool Contains(const rdf::Triple& t) const;

  size_t size() const { return spo_.size(); }

  const rdf::Dictionary& dict() const RDFREF_LIFETIME_BOUND override {
    return *dict_;
  }
  const Statistics& stats() const RDFREF_LIFETIME_BOUND { return stats_; }

 private:
  // Returns [begin, end) of the index range matching the bound prefix.
  // With a non-null `hint`, searches resume from the hinted position.
  using Range = std::pair<const rdf::Triple*, const rdf::Triple*>;
  Range EqualRange(rdf::TermId s, rdf::TermId p, rdf::TermId o) const;
  Range EqualRangeImpl(rdf::TermId s, rdf::TermId p, rdf::TermId o,
                       RangeHint* hint) const;

  const rdf::Dictionary* dict_;
  std::vector<rdf::Triple> spo_;  // sorted (s, p, o)
  std::vector<rdf::Triple> pso_;  // sorted (p, s, o)
  std::vector<rdf::Triple> pos_;  // sorted (p, o, s)
  std::vector<rdf::Triple> osp_;  // sorted (o, s, p)
  Statistics stats_;
};

}  // namespace storage
}  // namespace rdfref

#endif  // RDFREF_STORAGE_STORE_H_
