#include "storage/vertical_store.h"

#include <algorithm>

namespace rdfref {
namespace storage {

VerticalStore::VerticalStore(const rdf::Graph& graph)
    : dict_(&graph.dict()) {
  for (const rdf::Triple& t : graph.triples()) {
    tables_[t.p].by_subject.emplace_back(t.s, t.o);
  }
  properties_.reserve(tables_.size());
  for (auto& [p, table] : tables_) {
    std::sort(table.by_subject.begin(), table.by_subject.end());
    table.by_subject.erase(
        std::unique(table.by_subject.begin(), table.by_subject.end()),
        table.by_subject.end());
    table.by_object.reserve(table.by_subject.size());
    for (const auto& [s, o] : table.by_subject) {
      table.by_object.emplace_back(o, s);
    }
    std::sort(table.by_object.begin(), table.by_object.end());
    total_ += table.by_subject.size();
    properties_.push_back(p);
  }
  std::sort(properties_.begin(), properties_.end());
}

void VerticalStore::ScanTable(
    const PropertyTable& table, rdf::TermId p, rdf::TermId s, rdf::TermId o,
    const std::function<void(const rdf::Triple&)>& fn) {  // rdfref-check: allow(std-function)
  const bool bs = s != kAny, bo = o != kAny;
  if (bs) {
    auto begin = std::lower_bound(
        table.by_subject.begin(), table.by_subject.end(),
        std::make_pair(s, bo ? o : rdf::TermId{0}));
    for (auto it = begin; it != table.by_subject.end() && it->first == s;
         ++it) {
      if (bo && it->second != o) {
        if (it->second > o) break;
        continue;
      }
      fn(rdf::Triple(it->first, p, it->second));
    }
    return;
  }
  if (bo) {
    auto begin = std::lower_bound(table.by_object.begin(),
                                  table.by_object.end(),
                                  std::make_pair(o, rdf::TermId{0}));
    for (auto it = begin; it != table.by_object.end() && it->first == o;
         ++it) {
      fn(rdf::Triple(it->second, p, it->first));
    }
    return;
  }
  for (const auto& [subj, obj] : table.by_subject) {
    fn(rdf::Triple(subj, p, obj));
  }
}

size_t VerticalStore::CountTable(const PropertyTable& table, rdf::TermId s,
                                 rdf::TermId o) {
  const bool bs = s != kAny, bo = o != kAny;
  if (bs && bo) {
    return std::binary_search(table.by_subject.begin(),
                              table.by_subject.end(), std::make_pair(s, o))
               ? 1
               : 0;
  }
  if (bs) {
    auto range = std::equal_range(
        table.by_subject.begin(), table.by_subject.end(),
        std::make_pair(s, rdf::TermId{0}),
        [](const auto& a, const auto& b) { return a.first < b.first; });
    return static_cast<size_t>(range.second - range.first);
  }
  if (bo) {
    auto range = std::equal_range(
        table.by_object.begin(), table.by_object.end(),
        std::make_pair(o, rdf::TermId{0}),
        [](const auto& a, const auto& b) { return a.first < b.first; });
    return static_cast<size_t>(range.second - range.first);
  }
  return table.by_subject.size();
}

void VerticalStore::Scan(
    rdf::TermId s, rdf::TermId p, rdf::TermId o,
    const std::function<void(const rdf::Triple&)>& fn) const {  // rdfref-check: allow(std-function)
  if (p != kAny) {
    auto it = tables_.find(p);
    if (it != tables_.end()) ScanTable(it->second, p, s, o, fn);
    return;
  }
  // Unbound property: union over every per-property table.
  for (rdf::TermId prop : properties_) {
    ScanTable(tables_.at(prop), prop, s, o, fn);
  }
}

size_t VerticalStore::CountMatches(rdf::TermId s, rdf::TermId p,
                                   rdf::TermId o) const {
  if (p != kAny) {
    auto it = tables_.find(p);
    return it == tables_.end() ? 0 : CountTable(it->second, s, o);
  }
  size_t total = 0;
  for (rdf::TermId prop : properties_) {
    total += CountTable(tables_.at(prop), s, o);
  }
  return total;
}

}  // namespace storage
}  // namespace rdfref
