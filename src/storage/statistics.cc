#include "storage/statistics.h"

#include <algorithm>
#include <sstream>

namespace rdfref {
namespace storage {

std::string Statistics::Report(const rdf::Dictionary& dict,
                               size_t top_k) const {
  std::ostringstream out;
  out << "triples: " << total_triples_
      << "  distinct s/p/o: " << distinct_subjects_ << "/"
      << property_stats_.size() << "/" << distinct_objects_ << "\n";

  std::vector<std::pair<rdf::TermId, PropertyStats>> props(
      property_stats_.begin(), property_stats_.end());
  std::sort(props.begin(), props.end(), [](const auto& a, const auto& b) {
    return a.second.count > b.second.count;
  });
  out << "top properties (count, distinct s, distinct o):\n";
  for (size_t i = 0; i < props.size() && i < top_k; ++i) {
    out << "  " << dict.Lookup(props[i].first).lexical << ": "
        << props[i].second.count << ", " << props[i].second.distinct_subjects
        << ", " << props[i].second.distinct_objects << "\n";
  }

  std::vector<std::pair<rdf::TermId, uint64_t>> classes(
      class_cardinality_.begin(), class_cardinality_.end());
  std::sort(classes.begin(), classes.end(),
            [](const auto& a, const auto& b) { return a.second > b.second; });
  out << "top classes (instance count):\n";
  for (size_t i = 0; i < classes.size() && i < top_k; ++i) {
    out << "  " << dict.Lookup(classes[i].first).lexical << ": "
        << classes[i].second << "\n";
  }

  std::vector<std::pair<uint64_t, uint64_t>> pairs(
      subject_pair_counts_.begin(), subject_pair_counts_.end());
  std::sort(pairs.begin(), pairs.end(),
            [](const auto& a, const auto& b) { return a.second > b.second; });
  out << "top attribute pairs (subjects carrying both):\n";
  for (size_t i = 0; i < pairs.size() && i < top_k; ++i) {
    rdf::TermId p1 = static_cast<rdf::TermId>(pairs[i].first >> 32);
    rdf::TermId p2 = static_cast<rdf::TermId>(pairs[i].first & 0xffffffffu);
    out << "  (" << dict.Lookup(p1).lexical << ", "
        << dict.Lookup(p2).lexical << "): " << pairs[i].second << "\n";
  }
  return out.str();
}

void Statistics::Absorb(const Statistics& other) {
  // Union semantics: triple counts add exactly (a triple stored by two
  // endpoints is two scan results to the mediator), but a *distinct* count
  // of the union is NOT the sum of the distinct counts — the same subject
  // may appear on several endpoints. The sum is the correct upper bound
  // when the mediator cannot see cross-source duplicates, yet it must
  // never exceed the merged triple count, or downstream selectivity
  // estimates (count / distinct) drop below one row per key and the cost
  // model starts preferring plans on impossible cardinalities. Cap every
  // merged distinct count by the count it projects from.
  total_triples_ += other.total_triples_;
  distinct_subjects_ =
      std::min(distinct_subjects_ + other.distinct_subjects_, total_triples_);
  distinct_objects_ =
      std::min(distinct_objects_ + other.distinct_objects_, total_triples_);
  for (const auto& [p, ps] : other.property_stats_) {
    PropertyStats& mine = property_stats_[p];
    mine.count += ps.count;
    mine.distinct_subjects =
        std::min(mine.distinct_subjects + ps.distinct_subjects, mine.count);
    mine.distinct_objects =
        std::min(mine.distinct_objects + ps.distinct_objects, mine.count);
  }
  for (const auto& [c, n] : other.class_cardinality_) {
    class_cardinality_[c] += n;
  }
  for (const auto& [key, n] : other.subject_pair_counts_) {
    subject_pair_counts_[key] += n;
  }
}

}  // namespace storage
}  // namespace rdfref
