#include "storage/delta_store.h"

#include <utility>

namespace rdfref {
namespace storage {

bool DeltaStore::Insert(const rdf::Triple& t) {
  if (removed_.erase(t) > 0) {  // un-hide a base triple
    if (removed_.empty()) removed_presence_.Clear();
    return true;
  }
  if (base_->Contains(t)) return false;  // already visible
  if (!added_.insert(t).second) return false;
  added_presence_.Add(t);
  return true;
}

bool DeltaStore::Remove(const rdf::Triple& t) {
  if (added_.erase(t) > 0) {
    if (added_.empty()) added_presence_.Clear();
    return true;
  }
  if (!base_->Contains(t)) return false;  // was never visible
  if (!removed_.insert(t).second) return false;
  removed_presence_.Add(t);
  return true;
}

bool DeltaStore::Contains(const rdf::Triple& t) const {
  if (added_.count(t)) return true;
  return base_->Contains(t) && !removed_.count(t);
}

std::unique_ptr<Store> DeltaStore::Compact() const {
  std::vector<rdf::Triple> triples;
  ScanInto(kAny, kAny, kAny, &triples);
  return std::make_unique<Store>(&base_->dict(), std::move(triples));
}

void DeltaStore::Scan(
    rdf::TermId s, rdf::TermId p, rdf::TermId o,
    const std::function<void(const rdf::Triple&)>& fn) const {  // rdfref-check: allow(std-function)
  if (removed_.empty()) {
    base_->Scan(s, p, o, fn);
  } else {
    base_->Scan(s, p, o, [&](const rdf::Triple& t) {
      if (!removed_.count(t)) fn(t);
    });
  }
  for (const rdf::Triple& t : added_) {
    if (MatchesPattern(t, s, p, o)) fn(t);
  }
}

void DeltaStore::ScanInto(rdf::TermId s, rdf::TermId p, rdf::TermId o,
                          std::vector<rdf::Triple>* out) const {
  out->clear();
  std::span<const rdf::Triple> base = base_->EqualRangeSpan(s, p, o);
  if (removed_.empty()) {
    out->insert(out->end(), base.begin(), base.end());
  } else {
    for (const rdf::Triple& t : base) {
      if (!removed_.count(t)) out->push_back(t);
    }
  }
  for (const rdf::Triple& t : added_) {
    if (MatchesPattern(t, s, p, o)) out->push_back(t);
  }
}

size_t DeltaStore::CountMatches(rdf::TermId s, rdf::TermId p,
                                rdf::TermId o) const {
  size_t count = base_->CountMatches(s, p, o);
  for (const rdf::Triple& t : removed_) {
    if (MatchesPattern(t, s, p, o)) --count;  // removed_ only holds base triples
  }
  for (const rdf::Triple& t : added_) {
    if (MatchesPattern(t, s, p, o)) ++count;
  }
  return count;
}

}  // namespace storage
}  // namespace rdfref
