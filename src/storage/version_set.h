#ifndef RDFREF_STORAGE_VERSION_SET_H_
#define RDFREF_STORAGE_VERSION_SET_H_

#include <cstdint>
#include <memory>
#include <span>
#include <thread>
#include <unordered_set>
#include <vector>

#include "common/annotations.h"
#include "common/synchronization.h"
#include "rdf/triple.h"
#include "storage/epoch_observer.h"
#include "storage/store.h"
#include "storage/triple_source.h"

namespace rdfref {
namespace storage {

/// \file
/// \brief Epoch-based snapshot isolation for the explicit database — the
/// LSM-flavored versioned storage layer (DESIGN.md §11).
///
/// A VersionSet holds {immutable base Store, ordered frozen sorted delta
/// runs, one mutable head overlay}. Readers pin an epoch-numbered
/// SnapshotSource (shared_ptr-held, so reclamation is automatic when the
/// last reader releases it) and evaluate whole queries against that frozen
/// view; writers append to the head, and maintenance — explicit Freeze() /
/// Compact() calls or the background compaction thread — seals the head
/// into a new sorted run, merges base + runs into a fresh base, and
/// publishes the new version with a single pointer swap under the lock.
/// Writers never block readers holding snapshots; readers never observe a
/// torn overlay.

/// \brief One sealed generation of updates: the added triples as a fully
/// indexed immutable Store (so every pattern is a zero-copy range, exactly
/// like the base), plus the sorted set of triples this generation removed
/// from *older* generations. Immutable after construction.
class DeltaRun {
 public:
  /// \brief `dict` must outlive the run; `added`/`removed` are the sealed
  /// head's side sets (`removed` entries always name triples that were
  /// visible in an older generation when recorded).
  DeltaRun(const rdf::Dictionary* dict, std::vector<rdf::Triple> added,
           std::vector<rdf::Triple> removed);

  const Store& adds() const RDFREF_LIFETIME_BOUND { return adds_; }

  /// \brief Conservatively true when an added triple could match the
  /// pattern — three hash probes that let hot scans skip the adds index
  /// entirely for the (common) patterns a small run cannot touch.
  bool MayAddMatch(rdf::TermId s, rdf::TermId p, rdf::TermId o) const {
    return adds_.size() > 0 && added_presence_.MayMatch(s, p, o);
  }

  /// \brief True when this generation removed `t` from an older one.
  bool Removes(const rdf::Triple& t) const;

  bool has_removals() const { return !removed_.empty(); }
  const std::vector<rdf::Triple>& removed() const RDFREF_LIFETIME_BOUND {
    return removed_;
  }

  /// \brief Conservatively true when a removal could filter the pattern.
  bool MayRemoveMatch(rdf::TermId s, rdf::TermId p, rdf::TermId o) const {
    return !removed_.empty() && removed_presence_.MayMatch(s, p, o);
  }

  /// \brief Exact number of removed triples matching the pattern (linear;
  /// runs stay small relative to the base by compaction policy).
  size_t CountRemovedMatches(rdf::TermId s, rdf::TermId p,
                             rdf::TermId o) const;

 private:
  Store adds_;
  std::vector<rdf::Triple> removed_;  // sorted (s, p, o)
  PatternPresence added_presence_;
  PatternPresence removed_presence_;
};

/// \brief The mutable head overlay of a VersionSet, or a snapshot's frozen
/// copy of it: triples added/removed since the last Freeze, with presence
/// sets that keep the zero-copy fast path for patterns the head cannot
/// affect (same scheme as DeltaStore).
struct HeadDelta {
  std::unordered_set<rdf::Triple, rdf::TripleHash> added;
  std::unordered_set<rdf::Triple, rdf::TripleHash> removed;
  PatternPresence added_presence;
  PatternPresence removed_presence;

  bool empty() const { return added.empty() && removed.empty(); }
  size_t size() const { return added.size() + removed.size(); }
  bool MayAffect(rdf::TermId s, rdf::TermId p, rdf::TermId o) const {
    return (!added.empty() && added_presence.MayMatch(s, p, o)) ||
           (!removed.empty() && removed_presence.MayMatch(s, p, o));
  }
};

/// \brief One published immutable version: the base plus the sealed runs,
/// oldest first. Shared by every snapshot pinned while it was current.
struct Version {
  /// Publish counter (bumped by Freeze/Compact); diagnostics only —
  /// visibility is identified by the snapshot epoch, not the generation.
  uint64_t generation = 0;
  std::shared_ptr<const Store> base;
  std::vector<std::shared_ptr<const DeltaRun>> runs;
  /// Union of the runs' add/remove presences, built once at publication:
  /// a hot range probe pays two presence checks total — independent of the
  /// number of sealed runs — before falling back to per-run work.
  PatternPresence runs_added_presence;
  PatternPresence runs_removed_presence;

  bool RunsMayAdd(rdf::TermId s, rdf::TermId p, rdf::TermId o) const {
    return !runs.empty() && runs_added_presence.MayMatch(s, p, o);
  }
  bool RunsMayRemove(rdf::TermId s, rdf::TermId p, rdf::TermId o) const {
    return !runs.empty() && runs_removed_presence.MayMatch(s, p, o);
  }
};

/// \brief An immutable, epoch-numbered view of the database: {base, runs,
/// frozen head copy} merged with removal filtering. This is what query
/// evaluation runs against — the whole query sees one frozen epoch no
/// matter how writers race.
///
/// Visibility rule: generation 0 is the base, generations 1..R the runs
/// (oldest first), generation R+1 the frozen head. A triple is visible iff
/// some generation adds it and no *newer* generation removes it.
///
/// The batch fast path generalizes the empty-overlay zero-copy rule to
/// every sealed generation: when the frozen head cannot affect a pattern,
/// no run's removals can filter it, and exactly one generation holds
/// matches, the matching range of that generation's own clustered index is
/// returned as-is — so a fully compacted snapshot (or any pattern whose
/// matches live in one generation) scans exactly as fast as a pristine
/// Store, hinted galloping search included.
class SnapshotSource : public TripleSource {
 public:
  SnapshotSource(uint64_t epoch, std::shared_ptr<const Version> version,
                 HeadDelta head);

  /// \brief The write epoch this snapshot pinned: the number of
  /// visibility-changing updates applied to the VersionSet before it.
  uint64_t epoch() const { return epoch_; }

  void Scan(rdf::TermId s, rdf::TermId p, rdf::TermId o,
            const std::function<void(const rdf::Triple&)>& fn)
      const override;  // rdfref-check: allow(std-function)

  RDFREF_BORROWS_FROM(this)
  bool TryGetRange(rdf::TermId s, rdf::TermId p, rdf::TermId o,
                   std::span<const rdf::Triple>* out) const override;

  RDFREF_BORROWS_FROM(this)
  bool TryGetRangeHinted(rdf::TermId s, rdf::TermId p, rdf::TermId o,
                         std::span<const rdf::Triple>* out,
                         RangeHint* hint) const override;

  /// \brief Interval fast path: zero-copy iff no generation's overlays can
  /// touch the *widened* pattern (ranged position wildcarded — an interval
  /// probe must be conservative against every id it spans) and at most one
  /// sealed generation holds matches, delegating to that generation's own
  /// contiguity table. Everyone else is served by ScanIntervalInto.
  RDFREF_BORROWS_FROM(this)
  bool TryGetIntervalRange(rdf::TermId s, rdf::TermId p, rdf::TermId o,
                           int range_pos, rdf::TermId hi,
                           std::span<const rdf::Triple>* out) const override;

  void ScanInto(rdf::TermId s, rdf::TermId p, rdf::TermId o,
                std::vector<rdf::Triple>* out) const override;

  size_t CountMatches(rdf::TermId s, rdf::TermId p,
                      rdf::TermId o) const override;

  const rdf::Dictionary& dict() const RDFREF_LIFETIME_BOUND override {
    return version_->base->dict();
  }

  /// \brief True when `t` is visible at this epoch.
  bool Contains(const rdf::Triple& t) const;

  /// \brief The full visible triple set at this epoch, sorted (s, p, o) —
  /// what a from-scratch Store over this snapshot would index. The fuzz
  /// oracle compares pinned-epoch answers against exactly this.
  std::vector<rdf::Triple> Materialize() const;

  size_t num_runs() const { return version_->runs.size(); }
  size_t head_size() const { return head_.size(); }

 private:
  // True when some generation newer than `gen` (0 = base, i = runs[i-1],
  // R+1 = head) removes `t`.
  bool RemovedAbove(const rdf::Triple& t, size_t gen) const;

  uint64_t epoch_;
  std::shared_ptr<const Version> version_;
  HeadDelta head_;
  bool any_removals_;  // fast path: no generation filters anything
};

/// \brief Shared-ownership handle to a pinned snapshot. Copy freely; the
/// base, runs and frozen head stay alive until the last reader releases.
using SnapshotPtr = std::shared_ptr<const SnapshotSource>;

/// \brief Maintenance thresholds for background compaction.
struct VersionSetOptions {
  /// Seal the head into a frozen run once it holds this many entries.
  size_t freeze_threshold = 1024;
  /// Merge base + runs into a fresh base once this many runs are sealed.
  size_t compact_min_runs = 4;
};

/// \brief The writer-facing versioned store: one mutable head, atomic
/// version publication, snapshot pinning, and (optional) background
/// compaction on a dedicated maintenance thread.
///
/// Thread-safety: every public method is safe to call concurrently.
/// Writers serialize on the internal mutex; pinning a snapshot takes the
/// same mutex briefly (to copy the small head and share the version) and
/// readers then evaluate entirely lock-free against immutable state.
/// Freeze holds the lock while indexing the (small, threshold-bounded)
/// head; Compact does its O(base) merge *outside* the lock and publishes
/// with a compare-and-swap-style base identity check, so a racing manual
/// and background compaction cannot tear the version.
class VersionSet {
 public:
  /// \brief Non-owning initial base: `base` (and its dictionary) must
  /// outlive the VersionSet. Compacted bases are owned internally.
  explicit VersionSet(const Store* base);

  VersionSet(const VersionSet&) = delete;
  VersionSet& operator=(const VersionSet&) = delete;

  ~VersionSet();

  /// \brief Makes `t` visible at the next epoch; returns true when
  /// visibility changed.
  bool Insert(const rdf::Triple& t) RDFREF_EXCLUDES(mu_);

  /// \brief Hides `t` from the next epoch; returns true when visibility
  /// changed.
  bool Remove(const rdf::Triple& t) RDFREF_EXCLUDES(mu_);

  /// \brief True when `t` is visible at the current write epoch.
  bool Contains(const rdf::Triple& t) const RDFREF_EXCLUDES(mu_);

  /// \brief The current write epoch: bumped by every visibility-changing
  /// Insert/Remove (Freeze/Compact reorganize storage without changing
  /// visibility, so they do not bump it).
  uint64_t epoch() const RDFREF_EXCLUDES(mu_);

  /// \brief Pins the current epoch as an immutable snapshot.
  SnapshotPtr snapshot() const RDFREF_EXCLUDES(mu_);

  /// \brief Seals the head into a new frozen sorted run (no-op when the
  /// head is empty). Visibility is unchanged; the sealed triples become
  /// zero-copy range-scannable.
  void Freeze() RDFREF_EXCLUDES(mu_);

  /// \brief Freezes the head, then merges base + all sealed runs into a
  /// fresh fully indexed base Store (removals applied and discarded) and
  /// publishes it. The merge runs outside the lock; snapshots pinned
  /// before, during or after observe identical visible sets.
  void Compact() RDFREF_EXCLUDES(mu_);

  /// \brief Starts the background maintenance thread: it freezes the head
  /// when it crosses `options.freeze_threshold` and compacts when
  /// `options.compact_min_runs` runs have accumulated. Writers signal it;
  /// it never blocks readers. No-op if already running.
  void StartBackgroundCompaction(const VersionSetOptions& options = {})
      RDFREF_EXCLUDES(mu_);

  /// \brief Stops and joins the maintenance thread (idempotent; also run
  /// by the destructor). In-flight compaction completes first.
  void StopBackgroundCompaction() RDFREF_EXCLUDES(mu_);

  /// \brief Registers (or, with nullptr, unregisters) the write observer
  /// fed by every visibility-changing Insert/Remove — see
  /// storage/epoch_observer.h for the callback contract. At most one
  /// observer; it must outlive the VersionSet or be unregistered first.
  void SetWriteObserver(EpochWriteObserver* observer) RDFREF_EXCLUDES(mu_);

  /// \brief Entries currently in the mutable head overlay.
  size_t head_size() const RDFREF_EXCLUDES(mu_);

  /// \brief Sealed runs in the current version.
  size_t num_runs() const RDFREF_EXCLUDES(mu_);

 private:
  // Visibility of `t` through the sealed generations only (base + runs,
  // head excluded): newest run wins, then the base.
  bool ContainsSealedLocked(const rdf::Triple& t) const RDFREF_REQUIRES(mu_);

  void FreezeLocked() RDFREF_REQUIRES(mu_);

  // Body of the maintenance thread.
  void MaintenanceLoop() RDFREF_EXCLUDES(mu_);

  const rdf::Dictionary* dict_;

  mutable common::Mutex mu_;
  std::shared_ptr<const Version> current_ RDFREF_GUARDED_BY(mu_);
  HeadDelta head_ RDFREF_GUARDED_BY(mu_);
  uint64_t epoch_ RDFREF_GUARDED_BY(mu_) = 0;
  // Notified under mu_ right after the epoch bump, so the observer sees
  // writes in epoch order with no gaps (see epoch_observer.h).
  EpochWriteObserver* observer_ RDFREF_GUARDED_BY(mu_) = nullptr;

  // Background maintenance (StartBackgroundCompaction).
  common::CondVar work_cv_;
  bool stop_maintenance_ RDFREF_GUARDED_BY(mu_) = false;
  VersionSetOptions options_ RDFREF_GUARDED_BY(mu_);
  bool maintenance_enabled_ RDFREF_GUARDED_BY(mu_) = false;
  // Found by the first full-tree rdfref_check sweep (guard-completeness):
  // assigned in StartBackgroundCompaction and moved out in
  // StopBackgroundCompaction, both under mu_, but unannotated — so TSA
  // never checked it. The join itself runs on the moved-out handle,
  // outside the lock, which is exactly why the field must stay guarded.
  std::thread maintenance_ RDFREF_GUARDED_BY(mu_);
};

}  // namespace storage
}  // namespace rdfref

#endif  // RDFREF_STORAGE_VERSION_SET_H_
