#ifndef RDFREF_STORAGE_SERIALIZE_H_
#define RDFREF_STORAGE_SERIALIZE_H_

#include <string>

#include "common/result.h"
#include "rdf/graph.h"

namespace rdfref {
namespace storage {

/// \brief Binary graph image: dictionary + triples in one compact file
/// (magic "RDFB", little-endian fixed-width fields). Loading skips all
/// parsing, so repeated benchmark/CLI runs start fast.
///
/// Format:
///   "RDFB" u32(version) u32(num_terms) u32(num_triples)
///   per term:   u8(kind) u32(length) bytes
///   per triple: u32(s) u32(p) u32(o)
/// The first five terms must be the RDF/RDFS built-ins in vocab order (a
/// dictionary always interns them first); Load verifies this.
Status SaveGraph(const rdf::Graph& graph, const std::string& path);

/// \brief Loads a graph image written by SaveGraph.
Result<rdf::Graph> LoadGraph(const std::string& path);

}  // namespace storage
}  // namespace rdfref

#endif  // RDFREF_STORAGE_SERIALIZE_H_
