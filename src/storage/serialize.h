#ifndef RDFREF_STORAGE_SERIALIZE_H_
#define RDFREF_STORAGE_SERIALIZE_H_

#include <string>

#include "common/result.h"
#include "rdf/graph.h"

namespace rdfref {
namespace storage {

/// \brief Binary graph image: dictionary + triples in one compact file
/// (magic "RDFB", little-endian fixed-width fields). Loading skips all
/// parsing, so repeated benchmark/CLI runs start fast.
///
/// Format (version 2; version-1 images still load):
///   "RDFB" u32(version) u32(num_terms) u32(num_triples)
///   per term:   u8(kind) u32(length) bytes
///   per triple: u32(s) u32(p) u32(o)
///   u32(has_encoding 0|1) — v2 only; when 1, the dictionary's hierarchy
///   encoding (rdf/encoding.h) follows so an encoded id space round-trips
///   bit-identically instead of silently degrading to classic members:
///     u32(n) then per class interval:    u32(id) u32(lo) u32(hi)
///     u32(n) then per property interval: u32(id) u32(lo) u32(hi)
///     u32(n) then per SCC member:        u32(id) u32(representative)
/// The first five terms must be the RDF/RDFS built-ins in vocab order (a
/// dictionary always interns them first); Load verifies this. Term ids are
/// dense in id order — for an encoded graph that is the *post-permutation*
/// order, so loaded triples and intervals agree with the saved ones.
Status SaveGraph(const rdf::Graph& graph, const std::string& path);

/// \brief Loads a graph image written by SaveGraph.
Result<rdf::Graph> LoadGraph(const std::string& path);

}  // namespace storage
}  // namespace rdfref

#endif  // RDFREF_STORAGE_SERIALIZE_H_
