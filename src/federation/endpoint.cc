#include "federation/endpoint.h"

#include <algorithm>
#include <chrono>
#include <thread>

namespace rdfref {
namespace federation {

Result<size_t> Endpoint::Request(
    rdf::TermId s, rdf::TermId p, rdf::TermId o,
    const std::function<void(const rdf::Triple&)>& fn) const {
  common::MutexLock lock(&mu_);
  ++requests_served_;
  const FaultProfile& fault = options_.fault;
  if (fault.hard_down) {
    return Status::Unavailable(name_ + ": endpoint is down");
  }
  if (fault.latency_ms > 0.0) {
    std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(
        fault.latency_ms));
  }
  if (injector_.NextRequestFails()) {
    return Status::Unavailable(name_ + ": injected request failure");
  }
  const size_t cap = options_.max_answers_per_request;
  const size_t drop_after = fault.fail_after_triples;
  size_t delivered = 0;
  bool dropped = false;
  // The store's Scan has no early-exit; the cap models a server that
  // truncates its response, so we simply stop forwarding.
  store_->Scan(s, p, o, [&](const rdf::Triple& t) {
    if (dropped) return;
    if (cap != 0 && delivered >= cap) return;
    if (drop_after != 0 && delivered >= drop_after) {
      dropped = true;
      return;
    }
    fn(t);
    ++delivered;
  });
  if (dropped) {
    return Status::Unavailable(name_ + ": connection dropped after " +
                               std::to_string(delivered) + " triples");
  }
  return delivered;
}

size_t Endpoint::CountMatches(rdf::TermId s, rdf::TermId p,
                              rdf::TermId o) const {
  size_t n = store_->CountMatches(s, p, o);
  const size_t cap = options_.max_answers_per_request;
  if (cap != 0) n = std::min(n, cap);
  return n;
}

}  // namespace federation
}  // namespace rdfref
