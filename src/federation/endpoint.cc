#include "federation/endpoint.h"

namespace rdfref {
namespace federation {

size_t Endpoint::Request(
    rdf::TermId s, rdf::TermId p, rdf::TermId o,
    const std::function<void(const rdf::Triple&)>& fn) const {
  ++requests_served_;
  const size_t cap = options_.max_answers_per_request;
  size_t delivered = 0;
  // The store's Scan has no early-exit; the cap models a server that
  // truncates its response, so we simply stop forwarding.
  store_->Scan(s, p, o, [&](const rdf::Triple& t) {
    if (cap != 0 && delivered >= cap) return;
    fn(t);
    ++delivered;
  });
  return delivered;
}

}  // namespace federation
}  // namespace rdfref
