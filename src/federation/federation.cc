#include "federation/federation.h"

#include <algorithm>
#include <chrono>
#include <deque>
#include <thread>
#include <unordered_set>
#include <utility>

#include "common/thread_pool.h"
#include "cost/cost_model.h"
#include "engine/evaluator.h"
#include "optimizer/gcov.h"
#include "reformulation/reformulator.h"
#include "rdf/vocab.h"

namespace rdfref {
namespace federation {

namespace {

constexpr const char* kSchemaEndpointName = "__mediated_schema";

/// Saturates a triple vector in place with the given (saturated) local
/// schema — the endpoint-side variant of reasoner::Saturator, operating on
/// shared-dictionary triples rather than an owning Graph.
void SaturateTriples(const schema::Schema& local, const rdf::Dictionary& dict,
                     std::vector<rdf::Triple>* triples) {
  std::unordered_set<rdf::Triple, rdf::TripleHash> have(triples->begin(),
                                                        triples->end());
  std::deque<rdf::Triple> worklist(triples->begin(), triples->end());
  auto add = [&](const rdf::Triple& t) {
    if (have.insert(t).second) {
      triples->push_back(t);
      worklist.push_back(t);
    }
  };
  while (!worklist.empty()) {
    rdf::Triple t = worklist.front();
    worklist.pop_front();
    if (t.p == rdf::vocab::kTypeId) {
      for (rdf::TermId super : local.SuperClassesOf(t.o)) {
        add(rdf::Triple(t.s, rdf::vocab::kTypeId, super));
      }
    } else if (!rdf::vocab::IsSchemaProperty(t.p)) {
      for (rdf::TermId super : local.SuperPropertiesOf(t.p)) {
        add(rdf::Triple(t.s, super, t.o));
      }
      for (rdf::TermId c : local.DomainsOf(t.p)) {
        add(rdf::Triple(t.s, rdf::vocab::kTypeId, c));
      }
      if (!dict.Lookup(t.o).is_literal()) {
        for (rdf::TermId c : local.RangesOf(t.p)) {
          add(rdf::Triple(t.o, rdf::vocab::kTypeId, c));
        }
      }
    }
  }
}

/// All constraint triples of a (saturated) schema as a vector.
std::vector<rdf::Triple> SchemaTriples(const schema::Schema& schema) {
  std::vector<rdf::Triple> out;
  for (const auto& [super, subs] : schema.sub_class_map()) {
    for (rdf::TermId sub : subs) {
      out.emplace_back(sub, rdf::vocab::kSubClassOfId, super);
    }
  }
  for (const auto& [super, subs] : schema.sub_property_map()) {
    for (rdf::TermId sub : subs) {
      out.emplace_back(sub, rdf::vocab::kSubPropertyOfId, super);
    }
  }
  for (const auto& [p, classes] : schema.domain_map()) {
    for (rdf::TermId c : classes) {
      out.emplace_back(p, rdf::vocab::kDomainId, c);
    }
  }
  for (const auto& [p, classes] : schema.range_map()) {
    for (rdf::TermId c : classes) {
      out.emplace_back(p, rdf::vocab::kRangeId, c);
    }
  }
  return out;
}

uint64_t NameSeed(const std::string& name) {
  uint64_t h = 0xCBF29CE484222325ULL;  // FNV-1a
  for (char c : name) {
    h ^= static_cast<uint64_t>(static_cast<unsigned char>(c));
    h *= 0x100000001B3ULL;
  }
  return h;
}

}  // namespace

// ---------------------------------------------------------------------------
// FederatedSource
// ---------------------------------------------------------------------------

void FederatedSource::set_resilience(const ResilienceOptions& options) {
  common::MutexLock lock(&mu_);
  resilience_ = options;
  breakers_.clear();
}

void FederatedSource::set_threads(int threads) {
  threads_.store(threads <= 0 ? common::ThreadPool::DefaultThreads() : threads,
                 std::memory_order_relaxed);
}

void FederatedSource::ResetHealth() const {
  common::MutexLock lock(&mu_);
  health_.clear();
}

CircuitBreaker& FederatedSource::BreakerFor(const std::string& name) const {
  auto it = breakers_.find(name);
  if (it == breakers_.end()) {
    it = breakers_.emplace(name, CircuitBreaker(resilience_.breaker)).first;
  }
  return it->second;
}

EndpointHealth& FederatedSource::HealthFor(const std::string& name) const {
  EndpointHealth& h = health_[name];
  if (h.endpoint.empty()) h.endpoint = name;
  return h;
}

CircuitState FederatedSource::BreakerState(const std::string& endpoint) const {
  common::MutexLock lock(&mu_);
  auto it = breakers_.find(endpoint);
  return it == breakers_.end() ? CircuitState::kClosed : it->second.state();
}

CompletenessReport FederatedSource::Report() const {
  common::MutexLock lock(&mu_);
  CompletenessReport report;
  for (const auto& [name, h] : health_) {
    report.total_retries += h.retries;
    if (h.data_lost()) report.known_complete = false;
    report.endpoints.push_back(h);
  }
  return report;
}

bool FederatedSource::ScanEndpoint(const Endpoint& ep, rdf::TermId s,
                                   rdf::TermId p, rdf::TermId o,
                                   std::vector<rdf::Triple>* out) const {
  // Snapshot the policy under the lock: set_resilience may replace it
  // concurrently, and a torn read of the backoff schedule mid-scan would
  // desynchronize retries (found by the thread-safety annotation pass —
  // the old code read resilience_.retry by reference, unlocked).
  RetryPolicy retry;
  {
    common::MutexLock lock(&mu_);
    retry = resilience_.retry;
  }
  const int max_attempts = retry.max_attempts < 1 ? 1 : retry.max_attempts;
  for (int attempt = 0; attempt < max_attempts; ++attempt) {
    uint64_t backoff_salt = 0;
    {
      common::MutexLock lock(&mu_);
      CircuitBreaker& breaker = BreakerFor(ep.name());
      EndpointHealth& health = HealthFor(ep.name());
      if (!breaker.AllowRequest()) {
        ++health.skipped;
        if (health.last_error.empty()) {
          health.last_error = ep.name() + ": circuit breaker open";
        }
        return false;
      }
      if (attempt > 0) ++health.retries;
      backoff_salt = health.attempts;
      ++health.attempts;
    }
    if (attempt > 0) {
      double wait =
          retry.BackoffMillis(attempt, NameSeed(ep.name()) ^ backoff_salt);
      if (wait > 0.0) {
        std::this_thread::sleep_for(
            std::chrono::duration<double, std::milli>(wait));
      }
    }
    // Requests are buffered so a retry (or a mid-scan connection drop)
    // never leaks a partial or duplicated answer prefix to the evaluator.
    out->clear();
    Result<size_t> r =
        ep.Request(s, p, o, [&](const rdf::Triple& t) { out->push_back(t); });
    common::MutexLock lock(&mu_);
    CircuitBreaker& breaker = BreakerFor(ep.name());
    EndpointHealth& health = HealthFor(ep.name());
    if (r.ok()) {
      breaker.RecordSuccess();
      return true;
    }
    breaker.RecordFailure();
    ++health.failures;
    health.last_error = r.status().message();
  }
  common::MutexLock lock(&mu_);
  ++HealthFor(ep.name()).gave_up;
  return false;
}

void FederatedSource::Scan(
    rdf::TermId s, rdf::TermId p, rdf::TermId o,
    const std::function<void(const rdf::Triple&)>& fn) const {
  const size_t n = endpoints_->size();
  const int threads = threads_.load(std::memory_order_relaxed);
  if (threads <= 1 || n < 2) {
    std::vector<rdf::Triple> buffer;
    for (const std::unique_ptr<Endpoint>& ep : *endpoints_) {
      buffer.clear();
      if (ScanEndpoint(*ep, s, p, o, &buffer)) {
        for (const rdf::Triple& t : buffer) fn(t);
      }
    }
    return;
  }
  // Parallel fan-out: request every endpoint concurrently (including its
  // retry/backoff schedule), but deliver to `fn` only from this thread, in
  // endpoint registration order — the callback is the evaluator's join
  // recursion and is not thread-safe, and ordered delivery keeps answers
  // identical to the sequential fan-out.
  std::vector<std::vector<rdf::Triple>> buffers(n);
  std::vector<char> complete(n, 0);
  // Contiguous endpoint chunks keep concurrency bounded by the knob.
  const size_t chunks = std::min(n, static_cast<size_t>(threads));
  common::ThreadPool::Shared().ParallelFor(chunks, [&](size_t c) {
    for (size_t i = n * c / chunks; i < n * (c + 1) / chunks; ++i) {
      complete[i] =
          ScanEndpoint(*(*endpoints_)[i], s, p, o, &buffers[i]) ? 1 : 0;
    }
  });
  for (size_t i = 0; i < n; ++i) {
    if (!complete[i]) continue;
    for (const rdf::Triple& t : buffers[i]) fn(t);
  }
}

void FederatedSource::ScanInto(rdf::TermId s, rdf::TermId p, rdf::TermId o,
                               std::vector<rdf::Triple>* out) const {
  out->clear();
  const size_t n = endpoints_->size();
  const int threads = threads_.load(std::memory_order_relaxed);
  if (threads <= 1 || n < 2) {
    std::vector<rdf::Triple> buffer;
    for (const std::unique_ptr<Endpoint>& ep : *endpoints_) {
      buffer.clear();
      if (ScanEndpoint(*ep, s, p, o, &buffer)) {
        out->insert(out->end(), buffer.begin(), buffer.end());
      }
    }
    return;
  }
  // Parallel fan-out, flushed in endpoint registration order (see Scan).
  std::vector<std::vector<rdf::Triple>> buffers(n);
  std::vector<char> complete(n, 0);
  const size_t chunks = std::min(n, static_cast<size_t>(threads));
  common::ThreadPool::Shared().ParallelFor(chunks, [&](size_t c) {
    for (size_t i = n * c / chunks; i < n * (c + 1) / chunks; ++i) {
      complete[i] =
          ScanEndpoint(*(*endpoints_)[i], s, p, o, &buffers[i]) ? 1 : 0;
    }
  });
  for (size_t i = 0; i < n; ++i) {
    if (!complete[i]) continue;
    out->insert(out->end(), buffers[i].begin(), buffers[i].end());
  }
}

size_t FederatedSource::CountMatches(rdf::TermId s, rdf::TermId p,
                                     rdf::TermId o) const {
  size_t total = 0;
  for (const std::unique_ptr<Endpoint>& ep : *endpoints_) {
    if (ep->options().fault.hard_down) continue;
    if (BreakerState(ep->name()) == CircuitState::kOpen) continue;
    total += ep->CountMatches(s, p, o);
  }
  return total;
}

// ---------------------------------------------------------------------------
// Federation
// ---------------------------------------------------------------------------

void Federation::AddEndpoint(const std::string& name,
                             const rdf::Graph& graph,
                             EndpointOptions options) {
  // Re-encode the endpoint's triples against the shared dictionary (the
  // built-ins keep their stable ids, so constraints stay recognizable).
  std::vector<rdf::Triple> triples;
  triples.reserve(graph.size());
  const rdf::Dictionary& source_dict = graph.dict();
  for (const rdf::Triple& t : graph.triples()) {
    triples.emplace_back(dict_.Intern(source_dict.Lookup(t.s)),
                         dict_.Intern(source_dict.Lookup(t.p)),
                         dict_.Intern(source_dict.Lookup(t.o)));
  }

  if (options.locally_saturated) {
    // The endpoint saturated with its *own* constraints only.
    schema::Schema local;
    for (const rdf::Triple& t : triples) {
      switch (t.p) {
        case rdf::vocab::kSubClassOfId:
          local.AddSubClass(t.s, t.o);
          break;
        case rdf::vocab::kSubPropertyOfId:
          local.AddSubProperty(t.s, t.o);
          break;
        case rdf::vocab::kDomainId:
          local.AddDomain(t.s, t.o);
          break;
        case rdf::vocab::kRangeId:
          local.AddRange(t.s, t.o);
          break;
        default:
          break;
      }
    }
    local.Saturate();
    SaturateTriples(local, dict_, &triples);
  }

  // Fold the endpoint's constraints into the mediated schema.
  for (const rdf::Triple& t : triples) {
    switch (t.p) {
      case rdf::vocab::kSubClassOfId:
        schema_.AddSubClass(t.s, t.o);
        break;
      case rdf::vocab::kSubPropertyOfId:
        schema_.AddSubProperty(t.s, t.o);
        break;
      case rdf::vocab::kDomainId:
        schema_.AddDomain(t.s, t.o);
        break;
      case rdf::vocab::kRangeId:
        schema_.AddRange(t.s, t.o);
        break;
      default:
        break;
    }
  }
  schema_.Saturate();

  endpoints_.push_back(std::make_unique<Endpoint>(
      name, std::make_unique<storage::Store>(&dict_, std::move(triples)),
      options));
  schema_endpoint_stale_ = true;
}

void Federation::RefreshSchemaEndpoint() {
  if (!schema_endpoint_stale_) return;
  // Refresh the virtual endpoint exposing the mediated saturated schema
  // (so schema-position atoms of reformulations are answerable). It is
  // mediator-local: never rate-limited, never faulty.
  for (auto it = endpoints_.begin(); it != endpoints_.end(); ++it) {
    if ((*it)->name() == kSchemaEndpointName) {
      endpoints_.erase(it);
      break;
    }
  }
  endpoints_.push_back(std::make_unique<Endpoint>(
      kSchemaEndpointName,
      std::make_unique<storage::Store>(&dict_, SchemaTriples(schema_)),
      EndpointOptions{}));
  schema_endpoint_stale_ = false;
}

Result<engine::Table> Federation::Answer(const query::Cq& q,
                                         const query::Cover* cover) {
  FederationAnswerOptions options;
  options.cover = cover;
  RDFREF_ASSIGN_OR_RETURN(FederatedAnswer answer, AnswerResilient(q, options));
  return std::move(answer.table);
}

Result<FederatedAnswer> Federation::AnswerResilient(
    const query::Cq& q, const FederationAnswerOptions& options) {
  if (endpoints_.empty()) {
    return Status::InvalidArgument("federation has no endpoints");
  }
  RefreshSchemaEndpoint();
  source_.ResetHealth();

  reformulation::Reformulator reformulator(&schema_, {}, &dict_);
  query::Cover chosen;
  if (options.cover != nullptr) {
    chosen = *options.cover;
  } else {
    storage::Statistics merged = MergedStatistics();
    cost::CostModel cost_model(&merged);
    optimizer::CoverOptimizer optimizer(&reformulator, &cost_model);
    RDFREF_ASSIGN_OR_RETURN(chosen, optimizer.Greedy(q));
  }
  RDFREF_RETURN_NOT_OK(chosen.Validate(q));

  std::vector<query::Cq> fragment_queries = chosen.FragmentQueries(q);
  std::vector<query::Ucq> fragment_ucqs;
  fragment_ucqs.reserve(fragment_queries.size());
  for (const query::Cq& fq : fragment_queries) {
    RDFREF_ASSIGN_OR_RETURN(query::Ucq ucq, reformulator.Reformulate(fq));
    fragment_ucqs.push_back(std::move(ucq));
  }
  source_.set_threads(options.threads);
  engine::Evaluator evaluator(&source_, options.threads);
  RDFREF_ASSIGN_OR_RETURN(
      engine::Table table,
      evaluator.EvaluateJucq(q, fragment_queries, fragment_ucqs,
                             options.deadline));

  FederatedAnswer answer;
  answer.report = source_.Report();
  if (!answer.report.known_complete && !options.allow_partial) {
    std::string who;
    for (const std::string& name : answer.report.degraded_endpoints()) {
      if (!who.empty()) who += ", ";
      who += name;
    }
    return Status::Unavailable("endpoints failed or were skipped: " + who);
  }
  answer.table = std::move(table);
  return answer;
}

engine::Table Federation::EvaluateWithoutReasoning(const query::Cq& q) const {
  engine::Evaluator evaluator(&source_);
  return evaluator.EvaluateCq(q);
}

storage::Statistics Federation::MergedStatistics() const {
  storage::Statistics merged;
  for (const std::unique_ptr<Endpoint>& ep : endpoints_) {
    merged.Absorb(ep->store().stats());
  }
  return merged;
}

}  // namespace federation
}  // namespace rdfref
