#include "federation/federation.h"

#include <deque>
#include <unordered_set>
#include <utility>

#include "cost/cost_model.h"
#include "engine/evaluator.h"
#include "optimizer/gcov.h"
#include "reformulation/reformulator.h"
#include "rdf/vocab.h"

namespace rdfref {
namespace federation {

namespace {

constexpr const char* kSchemaEndpointName = "__mediated_schema";

/// Saturates a triple vector in place with the given (saturated) local
/// schema — the endpoint-side variant of reasoner::Saturator, operating on
/// shared-dictionary triples rather than an owning Graph.
void SaturateTriples(const schema::Schema& local, const rdf::Dictionary& dict,
                     std::vector<rdf::Triple>* triples) {
  std::unordered_set<rdf::Triple, rdf::TripleHash> have(triples->begin(),
                                                        triples->end());
  std::deque<rdf::Triple> worklist(triples->begin(), triples->end());
  auto add = [&](const rdf::Triple& t) {
    if (have.insert(t).second) {
      triples->push_back(t);
      worklist.push_back(t);
    }
  };
  while (!worklist.empty()) {
    rdf::Triple t = worklist.front();
    worklist.pop_front();
    if (t.p == rdf::vocab::kTypeId) {
      for (rdf::TermId super : local.SuperClassesOf(t.o)) {
        add(rdf::Triple(t.s, rdf::vocab::kTypeId, super));
      }
    } else if (!rdf::vocab::IsSchemaProperty(t.p)) {
      for (rdf::TermId super : local.SuperPropertiesOf(t.p)) {
        add(rdf::Triple(t.s, super, t.o));
      }
      for (rdf::TermId c : local.DomainsOf(t.p)) {
        add(rdf::Triple(t.s, rdf::vocab::kTypeId, c));
      }
      if (!dict.Lookup(t.o).is_literal()) {
        for (rdf::TermId c : local.RangesOf(t.p)) {
          add(rdf::Triple(t.o, rdf::vocab::kTypeId, c));
        }
      }
    }
  }
}

/// All constraint triples of a (saturated) schema as a vector.
std::vector<rdf::Triple> SchemaTriples(const schema::Schema& schema) {
  std::vector<rdf::Triple> out;
  for (const auto& [super, subs] : schema.sub_class_map()) {
    for (rdf::TermId sub : subs) {
      out.emplace_back(sub, rdf::vocab::kSubClassOfId, super);
    }
  }
  for (const auto& [super, subs] : schema.sub_property_map()) {
    for (rdf::TermId sub : subs) {
      out.emplace_back(sub, rdf::vocab::kSubPropertyOfId, super);
    }
  }
  for (const auto& [p, classes] : schema.domain_map()) {
    for (rdf::TermId c : classes) {
      out.emplace_back(p, rdf::vocab::kDomainId, c);
    }
  }
  for (const auto& [p, classes] : schema.range_map()) {
    for (rdf::TermId c : classes) {
      out.emplace_back(p, rdf::vocab::kRangeId, c);
    }
  }
  return out;
}

}  // namespace

void FederatedSource::Scan(
    rdf::TermId s, rdf::TermId p, rdf::TermId o,
    const std::function<void(const rdf::Triple&)>& fn) const {
  for (const std::unique_ptr<Endpoint>& ep : *endpoints_) {
    ep->Request(s, p, o, fn);
  }
}

size_t FederatedSource::CountMatches(rdf::TermId s, rdf::TermId p,
                                     rdf::TermId o) const {
  size_t total = 0;
  for (const std::unique_ptr<Endpoint>& ep : *endpoints_) {
    size_t n = ep->store().CountMatches(s, p, o);
    const size_t cap = ep->options().max_answers_per_request;
    if (cap != 0 && n > cap) n = cap;
    total += n;
  }
  return total;
}

void Federation::AddEndpoint(const std::string& name,
                             const rdf::Graph& graph,
                             EndpointOptions options) {
  // Re-encode the endpoint's triples against the shared dictionary (the
  // built-ins keep their stable ids, so constraints stay recognizable).
  std::vector<rdf::Triple> triples;
  triples.reserve(graph.size());
  const rdf::Dictionary& source_dict = graph.dict();
  for (const rdf::Triple& t : graph.triples()) {
    triples.emplace_back(dict_.Intern(source_dict.Lookup(t.s)),
                         dict_.Intern(source_dict.Lookup(t.p)),
                         dict_.Intern(source_dict.Lookup(t.o)));
  }

  if (options.locally_saturated) {
    // The endpoint saturated with its *own* constraints only.
    schema::Schema local;
    for (const rdf::Triple& t : triples) {
      switch (t.p) {
        case rdf::vocab::kSubClassOfId:
          local.AddSubClass(t.s, t.o);
          break;
        case rdf::vocab::kSubPropertyOfId:
          local.AddSubProperty(t.s, t.o);
          break;
        case rdf::vocab::kDomainId:
          local.AddDomain(t.s, t.o);
          break;
        case rdf::vocab::kRangeId:
          local.AddRange(t.s, t.o);
          break;
        default:
          break;
      }
    }
    local.Saturate();
    SaturateTriples(local, dict_, &triples);
  }

  // Fold the endpoint's constraints into the mediated schema.
  for (const rdf::Triple& t : triples) {
    switch (t.p) {
      case rdf::vocab::kSubClassOfId:
        schema_.AddSubClass(t.s, t.o);
        break;
      case rdf::vocab::kSubPropertyOfId:
        schema_.AddSubProperty(t.s, t.o);
        break;
      case rdf::vocab::kDomainId:
        schema_.AddDomain(t.s, t.o);
        break;
      case rdf::vocab::kRangeId:
        schema_.AddRange(t.s, t.o);
        break;
      default:
        break;
    }
  }
  schema_.Saturate();

  endpoints_.push_back(std::make_unique<Endpoint>(
      name, std::make_unique<storage::Store>(&dict_, std::move(triples)),
      options));
  schema_endpoint_stale_ = true;
}

Result<engine::Table> Federation::Answer(const query::Cq& q,
                                         const query::Cover* cover) {
  if (endpoints_.empty()) {
    return Status::InvalidArgument("federation has no endpoints");
  }
  if (schema_endpoint_stale_) {
    // Refresh the virtual endpoint exposing the mediated saturated schema
    // (so schema-position atoms of reformulations are answerable).
    for (auto it = endpoints_.begin(); it != endpoints_.end(); ++it) {
      if ((*it)->name() == kSchemaEndpointName) {
        endpoints_.erase(it);
        break;
      }
    }
    endpoints_.push_back(std::make_unique<Endpoint>(
        kSchemaEndpointName,
        std::make_unique<storage::Store>(&dict_, SchemaTriples(schema_)),
        EndpointOptions{}));
    schema_endpoint_stale_ = false;
  }

  reformulation::Reformulator reformulator(&schema_, {}, &dict_);
  query::Cover chosen;
  if (cover != nullptr) {
    chosen = *cover;
  } else {
    storage::Statistics merged = MergedStatistics();
    cost::CostModel cost_model(&merged);
    optimizer::CoverOptimizer optimizer(&reformulator, &cost_model);
    RDFREF_ASSIGN_OR_RETURN(chosen, optimizer.Greedy(q));
  }
  RDFREF_RETURN_NOT_OK(chosen.Validate(q));

  std::vector<query::Cq> fragment_queries = chosen.FragmentQueries(q);
  std::vector<query::Ucq> fragment_ucqs;
  fragment_ucqs.reserve(fragment_queries.size());
  for (const query::Cq& fq : fragment_queries) {
    RDFREF_ASSIGN_OR_RETURN(query::Ucq ucq, reformulator.Reformulate(fq));
    fragment_ucqs.push_back(std::move(ucq));
  }
  engine::Evaluator evaluator(&source_);
  return evaluator.EvaluateJucq(q, fragment_queries, fragment_ucqs);
}

engine::Table Federation::EvaluateWithoutReasoning(const query::Cq& q) const {
  engine::Evaluator evaluator(&source_);
  return evaluator.EvaluateCq(q);
}

storage::Statistics Federation::MergedStatistics() const {
  storage::Statistics merged;
  for (const std::unique_ptr<Endpoint>& ep : endpoints_) {
    merged.Absorb(ep->store().stats());
  }
  return merged;
}

}  // namespace federation
}  // namespace rdfref
