#include "federation/resilience.h"

#include <algorithm>
#include <sstream>

namespace rdfref {
namespace federation {

double RetryPolicy::BackoffMillis(int attempt, uint64_t seed) const {
  if (attempt <= 0 || initial_backoff_ms <= 0.0) return 0.0;
  double wait = initial_backoff_ms;
  for (int i = 1; i < attempt; ++i) wait *= backoff_multiplier;
  wait = std::min(wait, max_backoff_ms);
  if (jitter_fraction > 0.0) {
    // Deterministic jitter: hash (seed, attempt) to a factor in
    // [1 - jitter, 1 + jitter].
    uint64_t z = seed + static_cast<uint64_t>(attempt) * 0x9E3779B97F4A7C15ULL;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    z ^= z >> 31;
    double u = static_cast<double>(z >> 11) / 9007199254740992.0;  // [0,1)
    wait *= 1.0 + jitter_fraction * (2.0 * u - 1.0);
  }
  return wait;
}

const char* CircuitStateToString(CircuitState state) {
  switch (state) {
    case CircuitState::kClosed:
      return "CLOSED";
    case CircuitState::kOpen:
      return "OPEN";
    case CircuitState::kHalfOpen:
      return "HALF_OPEN";
  }
  return "UNKNOWN";
}

bool CircuitBreaker::AllowRequest() {
  switch (state_) {
    case CircuitState::kClosed:
      return true;
    case CircuitState::kOpen:
      if (since_open_.ElapsedMillis() >= options_.cooldown_ms) {
        state_ = CircuitState::kHalfOpen;
        half_open_successes_ = 0;
        return true;
      }
      return false;
    case CircuitState::kHalfOpen:
      return true;
  }
  return true;
}

void CircuitBreaker::RecordSuccess() {
  consecutive_failures_ = 0;
  if (state_ == CircuitState::kHalfOpen) {
    if (++half_open_successes_ >= options_.half_open_successes) {
      state_ = CircuitState::kClosed;
    }
  }
}

void CircuitBreaker::RecordFailure() {
  ++consecutive_failures_;
  if (state_ == CircuitState::kHalfOpen) {
    Trip();  // a failed probe reopens immediately
  } else if (state_ == CircuitState::kClosed &&
             consecutive_failures_ >= options_.failure_threshold) {
    Trip();
  }
}

void CircuitBreaker::Trip() {
  state_ = CircuitState::kOpen;
  half_open_successes_ = 0;
  ++times_opened_;
  since_open_.Reset();
}

std::vector<std::string> CompletenessReport::degraded_endpoints() const {
  std::vector<std::string> out;
  for (const EndpointHealth& h : endpoints) {
    if (h.data_lost()) out.push_back(h.endpoint);
  }
  return out;
}

std::string CompletenessReport::ToString() const {
  std::ostringstream out;
  out << (known_complete ? "complete" : "PARTIAL")
      << " (retries: " << total_retries << ")";
  for (const EndpointHealth& h : endpoints) {
    if (!h.data_lost() && h.failures == 0) continue;
    out << "\n  " << h.endpoint << ": attempts=" << h.attempts
        << " failures=" << h.failures << " retries=" << h.retries
        << " skipped=" << h.skipped << " gave_up=" << h.gave_up;
    if (!h.last_error.empty()) out << " last_error=\"" << h.last_error << '"';
  }
  return out.str();
}

}  // namespace federation
}  // namespace rdfref
