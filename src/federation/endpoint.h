#ifndef RDFREF_FEDERATION_ENDPOINT_H_
#define RDFREF_FEDERATION_ENDPOINT_H_

#include <memory>
#include <string>
#include <utility>

#include "common/result.h"
#include "common/synchronization.h"
#include "federation/resilience.h"
#include "rdf/graph.h"
#include "storage/store.h"

namespace rdfref {
namespace federation {

/// \brief Behaviour of one independent RDF source.
struct EndpointOptions {
  /// Maximum triples returned per pattern request, 0 = unlimited. Models
  /// public SPARQL endpoints that "return only restricted answers (e.g.,
  /// the first 50) to a query, to avoid overloading their servers"
  /// (Section 1 of the paper).
  size_t max_answers_per_request = 0;
  /// Whether this source saturated its *local* data with its *local*
  /// constraints before publishing. Cross-endpoint consequences (a fact in
  /// one source entailed by a constraint in another) are still missing —
  /// that is precisely why "computing the complete (distributed) set of
  /// consequences in this setting is unfeasible".
  bool locally_saturated = false;
  /// Simulated failure behaviour (deterministic under fault.seed); the
  /// default profile never fails.
  FaultProfile fault;
};

/// \brief An independent RDF endpoint, as in the Linked Open Data cloud:
/// its own triples, possibly its own constraints, possibly rate-limited,
/// possibly flaky (per its FaultProfile).
///
/// Triples are encoded against the *federation's* shared dictionary (URIs
/// are global identifiers; the mediator interns them once).
class Endpoint {
 public:
  /// \brief Wraps a store whose triples are encoded against the shared
  /// federation dictionary (Federation::AddEndpoint builds it).
  Endpoint(std::string name, std::unique_ptr<storage::Store> store,
           EndpointOptions options)
      : name_(std::move(name)),
        options_(options),
        store_(std::move(store)),
        injector_(options.fault) {}

  // Not movable: requests synchronize on a per-endpoint mutex (endpoints
  // live behind unique_ptr in the federation, so moves are not needed).
  Endpoint(Endpoint&&) = delete;
  Endpoint& operator=(Endpoint&&) = delete;

  const std::string& name() const { return name_; }
  const EndpointOptions& options() const { return options_; }
  const storage::Store& store() const { return *store_; }

  /// \brief Pattern request, honoring the per-request answer cap and the
  /// endpoint's fault profile. On success returns the number of triples
  /// delivered; on failure returns kUnavailable — note that a mid-scan
  /// drop (fault.fail_after_triples) has already forwarded a *prefix* of
  /// the answer to `fn`, so callers that retry must buffer and discard.
  Result<size_t> Request(rdf::TermId s, rdf::TermId p, rdf::TermId o,
                         const std::function<void(const rdf::Triple&)>& fn)
      const RDFREF_EXCLUDES(mu_);

  /// \brief How many triples a (successful) Request for this pattern would
  /// deliver: the store's match count clamped to max_answers_per_request.
  /// This is what the mediator's cost model must use so estimated
  /// cardinalities match what Scan actually delivers.
  size_t CountMatches(rdf::TermId s, rdf::TermId p, rdf::TermId o) const;

  /// \brief Total requests served (for the demo's cost displays).
  uint64_t requests_served() const RDFREF_EXCLUDES(mu_) {
    common::MutexLock lock(&mu_);
    return requests_served_;
  }

 private:
  // Immutable after construction (safe to read from any thread unlocked).
  std::string name_;
  EndpointOptions options_;
  std::unique_ptr<storage::Store> store_;
  // Serializes requests to this endpoint (as a remote server would): the
  // fault injector's failure stream and the served counter stay exact
  // when the mediator fans out scans in parallel.
  mutable common::Mutex mu_;
  mutable FaultInjector injector_ RDFREF_GUARDED_BY(mu_);
  mutable uint64_t requests_served_ RDFREF_GUARDED_BY(mu_) = 0;
};

}  // namespace federation
}  // namespace rdfref

#endif  // RDFREF_FEDERATION_ENDPOINT_H_
