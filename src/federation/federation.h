#ifndef RDFREF_FEDERATION_FEDERATION_H_
#define RDFREF_FEDERATION_FEDERATION_H_

#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "engine/table.h"
#include "federation/endpoint.h"
#include "query/cover.h"
#include "query/cq.h"
#include "rdf/dictionary.h"
#include "rdf/graph.h"
#include "schema/schema.h"
#include "storage/statistics.h"
#include "storage/triple_source.h"

namespace rdfref {
namespace federation {

/// \brief Mediator view over all endpoints: one TripleSource whose Scan
/// fans a pattern request out to every endpoint (respecting each
/// endpoint's answer caps) and whose dictionary is the shared one.
class FederatedSource : public storage::TripleSource {
 public:
  FederatedSource(const rdf::Dictionary* dict,
                  const std::vector<std::unique_ptr<Endpoint>>* endpoints)
      : dict_(dict), endpoints_(endpoints) {}

  void Scan(rdf::TermId s, rdf::TermId p, rdf::TermId o,
            const std::function<void(const rdf::Triple&)>& fn)
      const override;
  size_t CountMatches(rdf::TermId s, rdf::TermId p,
                      rdf::TermId o) const override;
  const rdf::Dictionary& dict() const override { return *dict_; }

 private:
  const rdf::Dictionary* dict_;
  const std::vector<std::unique_ptr<Endpoint>>* endpoints_;
};

/// \brief A federation of independent RDF endpoints, per the motivation of
/// Section 1: "Semantic Web data is often split across independent
/// [sources] ... implicit facts may be due to the presence of one fact in
/// one endpoint, and a constraint in another. Computing the complete
/// (distributed) set of consequences in this setting is unfeasible" —
/// which is exactly why reformulation-based answering matters.
///
/// The federation interns every endpoint's values into one shared
/// dictionary (URIs are global), gathers the *mediated schema* (the union
/// of all endpoints' constraint triples, saturated), and answers queries by
/// reformulating against that schema and evaluating over the mediator
/// source. Saturation is impossible here by construction: no endpoint may
/// be written to.
class Federation {
 public:
  Federation() = default;

  Federation(const Federation&) = delete;
  Federation& operator=(const Federation&) = delete;

  /// \brief Registers a source. Its triples are re-encoded against the
  /// shared dictionary; with options.locally_saturated the endpoint's data
  /// is saturated with the endpoint's own constraints first (sources
  /// "may or may not be saturated").
  void AddEndpoint(const std::string& name, const rdf::Graph& graph,
                   EndpointOptions options = {});

  /// \brief Answers q completely via reformulation against the mediated
  /// schema. With `cover == nullptr`, GCov picks the cover; otherwise the
  /// given cover is used.
  Result<engine::Table> Answer(const query::Cq& q,
                               const query::Cover* cover = nullptr);

  /// \brief Evaluates q against the endpoints without any reasoning
  /// (what a naive mediator would return — incomplete).
  engine::Table EvaluateWithoutReasoning(const query::Cq& q) const;

  /// \brief Shared dictionary, for parsing queries against the federation.
  rdf::Dictionary& dict() { return dict_; }

  /// \brief The mediated (saturated) schema.
  const schema::Schema& schema() const { return schema_; }

  const FederatedSource& source() const { return source_; }
  const std::vector<std::unique_ptr<Endpoint>>& endpoints() const {
    return endpoints_;
  }

  /// \brief Summed statistics across endpoints (counts add exactly;
  /// distinct counts add as an upper bound) — the mediator's cost-model
  /// input.
  storage::Statistics MergedStatistics() const;

 private:
  rdf::Dictionary dict_;
  std::vector<std::unique_ptr<Endpoint>> endpoints_;
  schema::Schema schema_;
  FederatedSource source_{&dict_, &endpoints_};
  // Saturated-schema triples must be visible to schema-level queries; the
  // mediator holds them as a virtual extra endpoint.
  bool schema_endpoint_stale_ = false;
};

}  // namespace federation
}  // namespace rdfref

#endif  // RDFREF_FEDERATION_FEDERATION_H_
