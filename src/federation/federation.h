#ifndef RDFREF_FEDERATION_FEDERATION_H_
#define RDFREF_FEDERATION_FEDERATION_H_

#include <atomic>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/deadline.h"
#include "common/result.h"
#include "common/synchronization.h"
#include "engine/table.h"
#include "federation/endpoint.h"
#include "federation/resilience.h"
#include "query/cover.h"
#include "query/cq.h"
#include "rdf/dictionary.h"
#include "rdf/graph.h"
#include "schema/schema.h"
#include "storage/statistics.h"
#include "storage/triple_source.h"

namespace rdfref {
namespace federation {

/// \brief Mediator view over all endpoints: one TripleSource whose Scan
/// fans a pattern request out to every endpoint (respecting each
/// endpoint's answer caps) and whose dictionary is the shared one.
///
/// The fan-out is fault-tolerant: each endpoint request is buffered, retried
/// under the RetryPolicy, and gated by a per-endpoint CircuitBreaker so dead
/// sources stop being hammered. Health is accumulated per endpoint between
/// ResetHealth() calls and summarized by Report() — the mediator's record of
/// which endpoints' data is missing from what it delivered.
class FederatedSource : public storage::TripleSource {
 public:
  FederatedSource(const rdf::Dictionary* dict,
                  const std::vector<std::unique_ptr<Endpoint>>* endpoints)
      : dict_(dict), endpoints_(endpoints) {}

  void Scan(rdf::TermId s, rdf::TermId p, rdf::TermId o,
            const std::function<void(const rdf::Triple&)>& fn)
      const override RDFREF_EXCLUDES(mu_);

  /// \brief Batch path for the columnar engine: the same fault-tolerant
  /// fan-out as Scan (buffered per endpoint, retried, breaker-gated,
  /// delivered in endpoint registration order), appended straight into
  /// `out` — no per-triple callback crosses the mediator boundary.
  void ScanInto(rdf::TermId s, rdf::TermId p, rdf::TermId o,
                std::vector<rdf::Triple>* out) const override
      RDFREF_EXCLUDES(mu_);
  /// \brief Cost-model cardinality: per-endpoint match counts clamped to
  /// each endpoint's answer cap, skipping endpoints that cannot currently
  /// deliver (hard-down or open circuit breaker) — estimates match what
  /// Scan actually returns.
  size_t CountMatches(rdf::TermId s, rdf::TermId p,
                      rdf::TermId o) const override RDFREF_EXCLUDES(mu_);
  const rdf::Dictionary& dict() const override { return *dict_; }

  /// \brief Replaces the retry/breaker policy and resets all breakers.
  void set_resilience(const ResilienceOptions& options) RDFREF_EXCLUDES(mu_);
  /// \brief Snapshot of the current policy (by value: the stored options
  /// are guarded by mu_ and may be replaced concurrently).
  ResilienceOptions resilience() const RDFREF_EXCLUDES(mu_) {
    common::MutexLock lock(&mu_);
    return resilience_;
  }

  /// \brief Scan fan-out parallelism: 1 (the default) requests endpoints
  /// one after another on the calling thread; n > 1 requests up to n
  /// endpoints concurrently; 0 resolves to
  /// common::ThreadPool::DefaultThreads(). Triples are always delivered
  /// to the scan callback sequentially, in endpoint registration order,
  /// so answers are identical across settings.
  void set_threads(int threads);
  int threads() const { return threads_.load(std::memory_order_relaxed); }

  /// \brief Clears accumulated health counters (breaker states persist —
  /// an open breaker stays open across queries until its cool-down).
  void ResetHealth() const RDFREF_EXCLUDES(mu_);

  /// \brief Health accumulated since the last ResetHealth, sorted by
  /// endpoint name.
  CompletenessReport Report() const RDFREF_EXCLUDES(mu_);

  /// \brief Breaker state for one endpoint (kClosed if it has no traffic).
  CircuitState BreakerState(const std::string& endpoint) const
      RDFREF_EXCLUDES(mu_);

 private:
  // Scans one endpoint with retries, collecting its triples into `out`
  // (flushed by Scan in endpoint order); true iff its data arrived in
  // full. Thread-safe: multiple endpoints may be scanned concurrently.
  bool ScanEndpoint(const Endpoint& ep, rdf::TermId s, rdf::TermId p,
                    rdf::TermId o, std::vector<rdf::Triple>* out) const
      RDFREF_EXCLUDES(mu_);
  // Both require mu_ to be held by the caller.
  CircuitBreaker& BreakerFor(const std::string& name) const
      RDFREF_REQUIRES(mu_);
  EndpointHealth& HealthFor(const std::string& name) const
      RDFREF_REQUIRES(mu_);

  const rdf::Dictionary* dict_;
  const std::vector<std::unique_ptr<Endpoint>>* endpoints_;
  // Fan-out parallelism knob; atomic because AnswerResilient reconfigures
  // it while a concurrent Scan (another query on the same mediator) may be
  // reading it.
  std::atomic<int> threads_{1};
  // Guards the policy, breakers_ and health_ (touched by concurrent
  // endpoint scans); never held across a sleep, a request, or a callback
  // delivery.
  mutable common::Mutex mu_;
  ResilienceOptions resilience_ RDFREF_GUARDED_BY(mu_);
  // std::map: nested Scan calls (index nested-loop joins re-enter Scan from
  // inside callbacks) must not invalidate references held by outer frames.
  mutable std::map<std::string, CircuitBreaker> breakers_
      RDFREF_GUARDED_BY(mu_);
  mutable std::map<std::string, EndpointHealth> health_
      RDFREF_GUARDED_BY(mu_);
};

/// \brief Options for one resilient federated answering call.
struct FederationAnswerOptions {
  /// Cover to use; nullptr lets GCov pick.
  const query::Cover* cover = nullptr;
  /// Evaluation budget, checked at CQ boundaries of the UCQ/JUCQ loops; an
  /// exploding reformulation returns kDeadlineExceeded instead of running
  /// away. Default: infinite.
  Deadline deadline;
  /// Degraded mode: when endpoints fail past their retries (or are skipped
  /// by an open breaker), return the answers derivable from the healthy
  /// endpoints plus a CompletenessReport, instead of failing outright.
  bool allow_partial = false;
  /// Evaluation + fan-out parallelism (see AnswerOptions::threads and
  /// FederatedSource::set_threads). Defaults to 1: sequential answering
  /// keeps each endpoint's deterministic fault-injector stream in request
  /// order, so fault-injection experiments replay exactly. The answer
  /// table is identical for any setting.
  int threads = 1;
};

/// \brief A (possibly partial) federated answer with its provenance: the
/// rows the mediator could derive, and the report saying whether any
/// endpoint's data is missing from them.
struct FederatedAnswer {
  engine::Table table;
  CompletenessReport report;
};

/// \brief A federation of independent RDF endpoints, per the motivation of
/// Section 1: "Semantic Web data is often split across independent
/// [sources] ... implicit facts may be due to the presence of one fact in
/// one endpoint, and a constraint in another. Computing the complete
/// (distributed) set of consequences in this setting is unfeasible" —
/// which is exactly why reformulation-based answering matters.
///
/// The federation interns every endpoint's values into one shared
/// dictionary (URIs are global), gathers the *mediated schema* (the union
/// of all endpoints' constraint triples, saturated), and answers queries by
/// reformulating against that schema and evaluating over the mediator
/// source. Saturation is impossible here by construction: no endpoint may
/// be written to.
class Federation {
 public:
  Federation() = default;

  Federation(const Federation&) = delete;
  Federation& operator=(const Federation&) = delete;

  /// \brief Registers a source. Its triples are re-encoded against the
  /// shared dictionary; with options.locally_saturated the endpoint's data
  /// is saturated with the endpoint's own constraints first (sources
  /// "may or may not be saturated").
  void AddEndpoint(const std::string& name, const rdf::Graph& graph,
                   EndpointOptions options = {});

  /// \brief Answers q completely via reformulation against the mediated
  /// schema. With `cover == nullptr`, GCov picks the cover; otherwise the
  /// given cover is used. All-or-nothing: endpoint failures surviving the
  /// retry policy fail the whole call with kUnavailable.
  Result<engine::Table> Answer(const query::Cq& q,
                               const query::Cover* cover = nullptr);

  /// \brief Resilient answering: retries/breakers always apply; with
  /// options.allow_partial the call degrades to the answers derivable from
  /// healthy endpoints (annotated by the CompletenessReport) instead of
  /// failing; options.deadline bounds evaluation (kDeadlineExceeded).
  Result<FederatedAnswer> AnswerResilient(
      const query::Cq& q, const FederationAnswerOptions& options = {});

  /// \brief Evaluates q against the endpoints without any reasoning
  /// (what a naive mediator would return — incomplete).
  [[nodiscard]] engine::Table EvaluateWithoutReasoning(
      const query::Cq& q) const;

  /// \brief Shared dictionary, for parsing queries against the federation.
  rdf::Dictionary& dict() { return dict_; }

  /// \brief The mediated (saturated) schema.
  const schema::Schema& schema() const { return schema_; }

  const FederatedSource& source() const { return source_; }
  std::vector<std::unique_ptr<Endpoint>>& endpoints() { return endpoints_; }
  const std::vector<std::unique_ptr<Endpoint>>& endpoints() const {
    return endpoints_;
  }

  /// \brief Mediator-side retry and circuit-breaker policy.
  void set_resilience(const ResilienceOptions& options) {
    source_.set_resilience(options);
  }

  /// \brief Summed statistics across endpoints (counts add exactly;
  /// distinct counts add as an upper bound) — the mediator's cost-model
  /// input.
  storage::Statistics MergedStatistics() const;

 private:
  void RefreshSchemaEndpoint();

  rdf::Dictionary dict_;
  std::vector<std::unique_ptr<Endpoint>> endpoints_;
  schema::Schema schema_;
  FederatedSource source_{&dict_, &endpoints_};
  // Saturated-schema triples must be visible to schema-level queries; the
  // mediator holds them as a virtual extra endpoint.
  bool schema_endpoint_stale_ = false;
};

}  // namespace federation
}  // namespace rdfref

#endif  // RDFREF_FEDERATION_FEDERATION_H_
