#ifndef RDFREF_FEDERATION_RESILIENCE_H_
#define RDFREF_FEDERATION_RESILIENCE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/timer.h"

namespace rdfref {
namespace federation {

// ---------------------------------------------------------------------------
// Fault injection
// ---------------------------------------------------------------------------

/// \brief Simulated misbehaviour of one endpoint — the adverse *source*
/// shapes a LOD-cloud mediator must survive (Section 1 motivates
/// rate-limited, unreliable public endpoints). All randomness is seeded and
/// advances deterministically with the request sequence, so experiments and
/// tests replay exactly.
struct FaultProfile {
  /// Probability in [0,1] that a request fails outright (connection
  /// refused / HTTP 503). 1.0 = every request fails.
  double failure_probability = 0.0;
  /// When > 0, the connection drops after delivering this many triples:
  /// the caller saw a prefix of the answer and then an error (mid-scan
  /// truncation, distinct from the silent `max_answers_per_request` cap).
  size_t fail_after_triples = 0;
  /// Simulated per-request network latency; the endpoint sleeps this long
  /// before answering.
  double latency_ms = 0.0;
  /// Endpoint is unreachable: every request fails immediately.
  bool hard_down = false;
  /// Seed for the failure-probability coin flips.
  uint64_t seed = 0;
};

/// \brief Deterministic per-endpoint fault source (splitmix64 stream).
class FaultInjector {
 public:
  explicit FaultInjector(const FaultProfile& profile)
      : profile_(profile), state_(profile.seed + 0x9E3779B97F4A7C15ULL) {}

  /// \brief Rolls the failure coin for the next request (advances the
  /// stream only when failure_probability > 0).
  bool NextRequestFails() {
    if (profile_.failure_probability <= 0.0) return false;
    if (profile_.failure_probability >= 1.0) return true;
    return NextUniform() < profile_.failure_probability;
  }

  const FaultProfile& profile() const { return profile_; }

 private:
  double NextUniform() {
    // splitmix64 step; top 53 bits to a double in [0,1).
    state_ += 0x9E3779B97F4A7C15ULL;
    uint64_t z = state_;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    z ^= z >> 31;
    return static_cast<double>(z >> 11) / 9007199254740992.0;  // 2^53
  }

  FaultProfile profile_;
  uint64_t state_;
};

// ---------------------------------------------------------------------------
// Retry with exponential backoff
// ---------------------------------------------------------------------------

/// \brief How the mediator retries a failed endpoint request.
struct RetryPolicy {
  /// Total attempts per scan (1 = no retry).
  int max_attempts = 3;
  /// First backoff wait; 0 disables sleeping entirely (simulation-friendly
  /// default — the *count* of retries is still tracked and reported).
  double initial_backoff_ms = 0.0;
  /// Exponential growth factor between attempts.
  double backoff_multiplier = 2.0;
  /// Ceiling on a single backoff wait.
  double max_backoff_ms = 50.0;
  /// Fraction of the wait perturbed by deterministic jitter in
  /// [1 - jitter, 1 + jitter], keyed on (seed, attempt) — retries against
  /// distinct endpoints de-synchronize, yet replays are exact.
  double jitter_fraction = 0.25;

  /// \brief Backoff before attempt `attempt` (1-based; attempt 0 is the
  /// initial try and never waits).
  double BackoffMillis(int attempt, uint64_t seed) const;
};

// ---------------------------------------------------------------------------
// Circuit breaker
// ---------------------------------------------------------------------------

enum class CircuitState {
  kClosed,    ///< healthy: requests flow
  kOpen,      ///< tripped: requests are skipped until the cool-down passes
  kHalfOpen,  ///< probing: a limited number of trial requests go through
};

const char* CircuitStateToString(CircuitState state);

struct CircuitBreakerOptions {
  /// Consecutive failures that trip the breaker (closed -> open).
  int failure_threshold = 3;
  /// How long an open breaker rejects before letting a probe through
  /// (open -> half-open). 0 = probe immediately on the next request.
  double cooldown_ms = 100.0;
  /// Successful probes required to close again (half-open -> closed).
  int half_open_successes = 1;
};

/// \brief Per-endpoint breaker so the mediator stops hammering dead
/// sources: closed -> open after `failure_threshold` consecutive failures,
/// open -> half-open after `cooldown_ms`, half-open -> closed after
/// `half_open_successes` successes (any half-open failure reopens).
class CircuitBreaker {
 public:
  explicit CircuitBreaker(CircuitBreakerOptions options = {})
      : options_(options) {}

  /// \brief Gate before issuing a request; an open breaker whose cool-down
  /// has passed transitions to half-open and admits the probe.
  bool AllowRequest();

  void RecordSuccess();
  void RecordFailure();

  CircuitState state() const { return state_; }
  int consecutive_failures() const { return consecutive_failures_; }
  uint64_t times_opened() const { return times_opened_; }

 private:
  void Trip();

  CircuitBreakerOptions options_;
  CircuitState state_ = CircuitState::kClosed;
  int consecutive_failures_ = 0;
  int half_open_successes_ = 0;
  uint64_t times_opened_ = 0;
  Timer since_open_;
};

// ---------------------------------------------------------------------------
// Completeness reporting
// ---------------------------------------------------------------------------

/// \brief Per-endpoint health over one mediated evaluation.
struct EndpointHealth {
  std::string endpoint;
  uint64_t attempts = 0;  ///< requests actually issued
  uint64_t failures = 0;  ///< failed attempts (pre-retry)
  uint64_t retries = 0;   ///< re-attempts after a failure
  uint64_t skipped = 0;   ///< scans rejected by an open circuit breaker
  uint64_t gave_up = 0;   ///< scans that exhausted every attempt
  std::string last_error;

  /// \brief True when some of this endpoint's data never reached the
  /// mediator (skips or exhausted retries).
  bool data_lost() const { return skipped > 0 || gave_up > 0; }
};

/// \brief What a degraded (partial) answer is missing and why — the
/// resilience analogue of the paper's completeness guarantees: Ref is
/// complete w.r.t. the data the mediator could actually reach, and this
/// report says exactly which sources that excludes.
struct CompletenessReport {
  /// True iff every endpoint delivered every requested scan in full.
  bool known_complete = true;
  uint64_t total_retries = 0;
  /// Per-endpoint health, sorted by endpoint name (deterministic).
  std::vector<EndpointHealth> endpoints;

  /// \brief Names of endpoints whose data is (partly) missing.
  std::vector<std::string> degraded_endpoints() const;

  std::string ToString() const;
};

/// \brief Mediator-side resilience knobs (fault profiles are per-endpoint,
/// on EndpointOptions).
struct ResilienceOptions {
  RetryPolicy retry;
  CircuitBreakerOptions breaker;
};

}  // namespace federation
}  // namespace rdfref

#endif  // RDFREF_FEDERATION_RESILIENCE_H_
