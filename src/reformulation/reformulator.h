#ifndef RDFREF_REFORMULATION_REFORMULATOR_H_
#define RDFREF_REFORMULATION_REFORMULATOR_H_

#include <cstdint>
#include <optional>
#include <set>
#include <vector>

#include "common/result.h"
#include "query/cq.h"
#include "query/ucq.h"
#include "schema/schema.h"

namespace rdfref {
namespace reformulation {

/// \brief Options bounding reformulation work.
struct ReformulationOptions {
  /// Hard cap on the number of CQs in a produced UCQ. The paper's Example 1
  /// reformulates into 318,096 CQs, "which could not even be parsed" by the
  /// target systems; we mirror that failure mode by refusing (with
  /// kResourceExhausted) to materialize UCQs beyond this bound.
  uint64_t max_cqs = 1'000'000;
  /// Forces the general CQ-level worklist even when the per-atom product
  /// fast path applies (ablation and differential testing).
  bool force_worklist = false;
  /// Prunes union members subsumed by others (query::MinimizeUcq) after
  /// reformulation. Quadratic in the member count, so only applied up to
  /// minimize_threshold members.
  bool minimize = false;
  uint64_t minimize_threshold = 4096;
  /// Fuses the hierarchy rule families (rules 1/4/5/8) into single
  /// id-interval members when the dictionary carries a hierarchy encoding
  /// (schema/encoder.h). Terms escaping the encoding — secondary parents of
  /// multi-parent nodes, over-budget hierarchies, terms related after
  /// encoding — still get classic members, so the fused UCQ is answer-set
  /// equal to the classic one (proved by the check_encoded fuzz relation).
  /// Off forces classic enumeration even on an encoded dictionary (ablation
  /// and the check_encoded comparison arm). A no-op when the dictionary has
  /// no encoding, which is the default state.
  bool use_encoding = true;
};

/// \brief One member of a single atom's reformulation: the rewritten atom
/// plus the variable-to-constant bindings the applied rules imposed.
struct AtomReformulation {
  query::Atom atom;
  /// Bindings accumulated by rules 5-13, to be applied CQ-wide (they reach
  /// the query head when the bound variable is distinguished).
  std::vector<std::pair<query::VarId, rdf::TermId>> bindings;
  /// Variables that rules 3/7 constrained to resources (URIs/blank nodes):
  /// the subject a rule moved into object position cannot bind a literal,
  /// since a literal cannot be the subject of an entailed rdf:type triple.
  std::vector<query::VarId> resource_vars;
  /// Which rule produced this member last (0 = the original atom).
  int rule = 0;
};

/// \brief The CQ-to-UCQ reformulation algorithm of the RDF database
/// fragment [9]: exhaustive backward-chaining application of 13
/// reformulation rules against the *saturated* RDFS schema.
///
/// The rules (DESIGN.md, Section 3) rewrite one atom at a time:
///   1-3   type atom, constant class: subclass / domain / range
///   4     property atom, constant property: subproperty
///   5-7   type atom, variable class: as 1-3, binding the class variable
///   8-9   variable property: subproperty (binding it), or rdf:type
///   10-13 variable property: bound to one of the four RDFS properties
/// The produced UCQ qref satisfies q(db∞) = qref(db) when db stores its
/// (small) schema component saturated — which PrepareRefGraph in
/// api/query_answering.h guarantees.
class Reformulator {
 public:
  /// \brief `schema` must outlive the reformulator and must be saturated.
  /// `dict`, when provided, refines rules 3/7: a member whose moved
  /// subject is a literal *constant* is dropped (it cannot be typed).
  explicit Reformulator(const schema::Schema* schema,
                        ReformulationOptions options = {},
                        const rdf::Dictionary* dict = nullptr);

  virtual ~Reformulator() = default;

  /// \brief Reformulates a whole CQ into an equivalent UCQ (the original
  /// query is always a member). Fails with kResourceExhausted beyond
  /// options.max_cqs.
  Result<query::Ucq> Reformulate(const query::Cq& q) const;

  /// \brief Exact size of the UCQ reformulation of q. When per-atom
  /// reformulations are independent (no bindable variable shared across
  /// atoms), this is a closed-form product and never materializes the UCQ —
  /// this is how the 318,096 of Example 1 is obtained without building it.
  Result<uint64_t> CountReformulations(const query::Cq& q) const;

  /// \brief Reformulates a single atom of q into its set of members.
  /// Exposed for the SCQ strategy and the cost model.
  std::vector<AtomReformulation> ReformulateAtom(const query::Cq& q,
                                                 const query::Atom& atom) const;

  /// \brief True when the product fast path is exact for q: no variable
  /// that reformulation may bind (property-position variables, and
  /// class-position variables of type atoms) occurs in more than one atom.
  bool AtomsIndependent(const query::Cq& q) const;

  const schema::Schema& schema() const { return *schema_; }
  const ReformulationOptions& options() const { return options_; }

 protected:
  /// Single-step rule application on `atom`; appends results to `out`.
  /// Overridden by IncompleteReformulator to drop rules.
  virtual void ApplyRules(const query::Cq& q, const AtomReformulation& member,
                          std::vector<AtomReformulation>* out) const;

  /// Emits the hierarchy rule family (rules 1/4/5/8) for one atom: when the
  /// dictionary encodes `term`'s subtree as an id interval wider than one
  /// id, a single interval member replaces the per-sub-term union, and only
  /// the sub-terms escaping the interval are emitted classically; without a
  /// usable interval the classic full enumeration is emitted. `subs` is the
  /// saturated sub-term set of `term`, `property_position` selects the
  /// property rules (4/8) over the class rules (1/5), and `bind_var`, when
  /// set (rules 5/8), is bound to `term` on every emitted member.
  void EmitSubTermMembers(const AtomReformulation& member,
                          const query::Atom& atom, rdf::TermId term,
                          const std::set<rdf::TermId>& subs,
                          bool property_position,
                          std::optional<query::VarId> bind_var, int rule,
                          std::vector<AtomReformulation>* out) const;

  const schema::Schema* schema_;
  ReformulationOptions options_;
  const rdf::Dictionary* dict_;

 private:
  Result<query::Ucq> ReformulateByProduct(const query::Cq& q) const;
  Result<query::Ucq> ReformulateByWorklist(const query::Cq& q) const;
};

/// \brief Emulation of the fixed, *incomplete* reformulation performed by
/// native RDF platforms such as Virtuoso and AllegroGraph (Section 5 of the
/// paper; see [6]): only the class and property hierarchies are used
/// (rules 1/4/5/8), the domain and range constraints are ignored, as are the
/// variable-property specializations. Answers may be missing.
class IncompleteReformulator : public Reformulator {
 public:
  explicit IncompleteReformulator(const schema::Schema* schema,
                                  ReformulationOptions options = {},
                                  const rdf::Dictionary* dict = nullptr)
      : Reformulator(schema, options, dict) {}

 protected:
  void ApplyRules(const query::Cq& q, const AtomReformulation& member,
                  std::vector<AtomReformulation>* out) const override;
};

}  // namespace reformulation
}  // namespace rdfref

#endif  // RDFREF_REFORMULATION_REFORMULATOR_H_
