#include "reformulation/reformulator.h"

#include <algorithm>
#include <deque>
#include <string>
#include <unordered_set>

#include "query/minimize.h"
#include "rdf/vocab.h"

namespace rdfref {
namespace reformulation {

namespace {

using query::Atom;
using query::Cq;
using query::QTerm;
using query::Ucq;
using query::VarId;

/// Placeholder for the fresh existential variable a rule introduces; it is
/// materialized as a real query variable when the atom lands in a CQ.
constexpr VarId kFreshMark = 0xFFFFFFFFu;

bool IsFresh(const QTerm& t) { return t.is_var && t.var() == kFreshMark; }

QTerm Fresh() { return QTerm::Var(kFreshMark); }

/// Replaces variable `v` by constant `c` within one atom.
Atom SubstAtom(const Atom& a, VarId v, rdf::TermId c) {
  Atom out = a;
  auto fix = [v, c](QTerm* t) {
    if (t->is_var && t->var() == v) *t = QTerm::Const(c);
  };
  fix(&out.s);
  fix(&out.p);
  fix(&out.o);
  return out;
}

/// Dedup key over (atom, bindings).
std::string MemberKey(const AtomReformulation& m) {
  std::string key;
  auto add = [&key](const QTerm& t) {
    key += t.is_var ? 'v' : 'c';
    key += std::to_string(t.id);
    key += ' ';
  };
  add(m.atom.s);
  add(m.atom.p);
  add(m.atom.o);
  if (m.atom.has_range()) {
    // An interval member and a classic member on the interval's low endpoint
    // must not collide.
    key += 'R';
    key += std::to_string(m.atom.range_pos);
    key += "..";
    key += std::to_string(m.atom.range_hi);
    key += ' ';
  }
  std::vector<std::pair<VarId, rdf::TermId>> sorted = m.bindings;
  std::sort(sorted.begin(), sorted.end());
  for (const auto& [v, c] : sorted) {
    key += std::to_string(v);
    key += "->";
    key += std::to_string(c);
    key += ' ';
  }
  std::vector<VarId> res = m.resource_vars;
  std::sort(res.begin(), res.end());
  for (VarId v : res) {
    key += 'r';
    key += std::to_string(v);
    key += ' ';
  }
  return key;
}

AtomReformulation Derive(const AtomReformulation& base, Atom atom, int rule) {
  AtomReformulation out;
  out.atom = atom;
  out.bindings = base.bindings;
  out.resource_vars = base.resource_vars;
  out.rule = rule;
  return out;
}

AtomReformulation DeriveBound(const AtomReformulation& base, Atom atom,
                              VarId v, rdf::TermId c, int rule) {
  AtomReformulation out;
  out.atom = SubstAtom(atom, v, c);
  out.bindings = base.bindings;
  out.bindings.emplace_back(v, c);
  out.resource_vars = base.resource_vars;
  out.rule = rule;
  return out;
}

}  // namespace

Reformulator::Reformulator(const schema::Schema* schema,
                           ReformulationOptions options,
                           const rdf::Dictionary* dict)
    : schema_(schema), options_(options), dict_(dict) {}

void Reformulator::EmitSubTermMembers(const AtomReformulation& member,
                                      const Atom& atom, rdf::TermId term,
                                      const std::set<rdf::TermId>& subs,
                                      bool property_position,
                                      std::optional<VarId> bind_var, int rule,
                                      std::vector<AtomReformulation>* out)
    const {
  auto classic_atom = [&](rdf::TermId sub) {
    return property_position ? Atom(atom.s, QTerm::Const(sub), atom.o)
                             : Atom(atom.s, atom.p, QTerm::Const(sub));
  };
  auto emit = [&](const Atom& a) {
    out->push_back(bind_var ? DeriveBound(member, a, *bind_var, term, rule)
                            : Derive(member, a, rule));
  };
  const rdf::TermEncoding* enc =
      options_.use_encoding && dict_ != nullptr ? dict_->encoding() : nullptr;
  std::optional<rdf::TermEncoding::Interval> iv;
  if (enc != nullptr) {
    iv = property_position ? enc->PropertyInterval(term)
                           : enc->ClassInterval(term);
  }
  if (!iv.has_value() || iv->lo >= iv->hi) {
    // No usable interval (or a single-id one, which fuses nothing):
    // classic enumeration.
    for (rdf::TermId sub : subs) emit(classic_atom(sub));
    return;
  }
  // One interval member covers term's whole encoded subtree (including the
  // term itself and its hierarchy cycle, which share the interval)...
  Atom fused = atom;
  if (property_position) {
    fused.p = QTerm::Const(iv->lo);
    fused.range_pos = Atom::kRangeP;
  } else {
    fused.o = QTerm::Const(iv->lo);
    fused.range_pos = Atom::kRangeO;
  }
  fused.range_hi = iv->hi;
  emit(fused);
  // ... and the sub-terms escaping it (secondary parents of multi-parent
  // nodes, terms subordinated after encoding) keep classic members.
  for (rdf::TermId sub : subs) {
    if (sub >= iv->lo && sub <= iv->hi) continue;
    emit(classic_atom(sub));
  }
}

void Reformulator::ApplyRules(const Cq& q, const AtomReformulation& member,
                              std::vector<AtomReformulation>* out) const {
  (void)q;
  const Atom& atom = member.atom;
  // Interval members are closed under the rules: the fused hierarchy is
  // already exhausted, and the saturated schema's (S1)-(S6) closure makes
  // the seed atom's own domain/range/sub-term members cover everything the
  // interval's individual ids could contribute.
  if (atom.has_range()) return;
  if (!atom.p.is_var) {
    const rdf::TermId p = atom.p.term();
    if (p == rdf::vocab::kTypeId) {
      if (!atom.o.is_var) {
        // Rules 1-3: type atom with a constant class.
        const rdf::TermId c = atom.o.term();
        EmitSubTermMembers(member, atom, c, schema_->SubClassesOf(c),
                           /*property_position=*/false, std::nullopt, 1, out);
        for (rdf::TermId pp : schema_->DomainPropertiesOf(c)) {
          out->push_back(
              Derive(member, Atom(atom.s, QTerm::Const(pp), Fresh()), 2));
        }
        for (rdf::TermId pp : schema_->RangePropertiesOf(c)) {
          if (!atom.s.is_var && dict_ != nullptr &&
              dict_->Lookup(atom.s.term()).is_literal()) {
            continue;  // a literal cannot be typed
          }
          AtomReformulation derived =
              Derive(member, Atom(Fresh(), QTerm::Const(pp), atom.s), 3);
          if (atom.s.is_var) derived.resource_vars.push_back(atom.s.var());
          out->push_back(std::move(derived));
        }
      } else if (!IsFresh(atom.o)) {
        // Rules 5-7: type atom with a variable class position; rewriting
        // binds the variable to the class whose instances the rewrite
        // retrieves.
        const VarId y = atom.o.var();
        for (const auto& [super, subs] : schema_->sub_class_map()) {
          EmitSubTermMembers(member, atom, super, subs,
                             /*property_position=*/false, y, 5, out);
        }
        for (const auto& [pp, classes] : schema_->domain_map()) {
          for (rdf::TermId c : classes) {
            out->push_back(DeriveBound(
                member, Atom(atom.s, QTerm::Const(pp), Fresh()), y, c, 6));
          }
        }
        for (const auto& [pp, classes] : schema_->range_map()) {
          if (!atom.s.is_var && dict_ != nullptr &&
              dict_->Lookup(atom.s.term()).is_literal()) {
            break;  // a literal cannot be typed
          }
          for (rdf::TermId c : classes) {
            AtomReformulation derived = DeriveBound(
                member, Atom(Fresh(), QTerm::Const(pp), atom.s), y, c, 7);
            if (atom.s.is_var) derived.resource_vars.push_back(atom.s.var());
            out->push_back(std::move(derived));
          }
        }
      }
    } else if (!rdf::vocab::IsSchemaProperty(p)) {
      // Rule 4: property atom with a constant (non-built-in) property.
      EmitSubTermMembers(member, atom, p, schema_->SubPropertiesOf(p),
                         /*property_position=*/true, std::nullopt, 4, out);
    }
    // Constant RDFS schema property: answered directly against the
    // saturated schema stored in the database; no rule applies.
  } else if (!IsFresh(atom.p)) {
    // Rules 8-13: variable in property position.
    const VarId y = atom.p.var();
    for (const auto& [super, subs] : schema_->sub_property_map()) {
      EmitSubTermMembers(member, atom, super, subs,
                         /*property_position=*/true, y, 8, out);
    }
    out->push_back(DeriveBound(
        member, Atom(atom.s, QTerm::Const(rdf::vocab::kTypeId), atom.o), y,
        rdf::vocab::kTypeId, 9));
    const rdf::TermId kSchemaProps[4] = {
        rdf::vocab::kSubClassOfId, rdf::vocab::kSubPropertyOfId,
        rdf::vocab::kDomainId, rdf::vocab::kRangeId};
    for (int i = 0; i < 4; ++i) {
      out->push_back(DeriveBound(member,
                                 Atom(atom.s, QTerm::Const(kSchemaProps[i]),
                                      atom.o),
                                 y, kSchemaProps[i], 10 + i));
    }
  }
}

void IncompleteReformulator::ApplyRules(
    const Cq& q, const AtomReformulation& member,
    std::vector<AtomReformulation>* out) const {
  (void)q;
  // Hierarchies only (rules 1 and 4): the fixed strategy of Virtuoso /
  // AllegroGraph-style engines, which ignore rdfs:domain and rdfs:range [6].
  const Atom& atom = member.atom;
  if (atom.has_range()) return;  // interval members are closed
  if (atom.p.is_var) return;
  const rdf::TermId p = atom.p.term();
  if (p == rdf::vocab::kTypeId) {
    if (!atom.o.is_var) {
      EmitSubTermMembers(member, atom, atom.o.term(),
                         schema_->SubClassesOf(atom.o.term()),
                         /*property_position=*/false, std::nullopt, 1, out);
    }
  } else if (!rdf::vocab::IsSchemaProperty(p)) {
    EmitSubTermMembers(member, atom, p, schema_->SubPropertiesOf(p),
                       /*property_position=*/true, std::nullopt, 4, out);
  }
}

std::vector<AtomReformulation> Reformulator::ReformulateAtom(
    const Cq& q, const Atom& atom) const {
  std::vector<AtomReformulation> result;
  std::unordered_set<std::string> seen;
  std::deque<size_t> worklist;

  AtomReformulation seed;
  seed.atom = atom;
  seed.rule = 0;
  seen.insert(MemberKey(seed));
  result.push_back(seed);
  worklist.push_back(0);

  std::vector<AtomReformulation> step;
  while (!worklist.empty()) {
    size_t idx = worklist.front();
    worklist.pop_front();
    step.clear();
    ApplyRules(q, result[idx], &step);
    for (AtomReformulation& m : step) {
      std::string key = MemberKey(m);
      if (seen.insert(std::move(key)).second) {
        result.push_back(std::move(m));
        worklist.push_back(result.size() - 1);
      }
    }
  }
  return result;
}

bool Reformulator::AtomsIndependent(const Cq& q) const {
  const std::vector<Atom>& body = q.body();
  for (size_t i = 0; i < body.size(); ++i) {
    // Variables that rules may bind in atom i: a property-position
    // variable, and the class-position variable of a (potential) type atom.
    std::vector<VarId> bindable;
    if (body[i].p.is_var) {
      bindable.push_back(body[i].p.var());
      if (body[i].o.is_var) bindable.push_back(body[i].o.var());
    } else if (body[i].p.term() == rdf::vocab::kTypeId && body[i].o.is_var) {
      bindable.push_back(body[i].o.var());
    }
    for (VarId v : bindable) {
      for (size_t j = 0; j < body.size(); ++j) {
        if (j == i) continue;
        if (Cq::AtomVars(body[j]).count(v)) return false;
      }
    }
  }
  return true;
}

Result<Ucq> Reformulator::ReformulateByProduct(const Cq& q) const {
  const size_t n = q.body().size();
  std::vector<std::vector<AtomReformulation>> sets;
  sets.reserve(n);
  uint64_t total = 1;
  for (size_t i = 0; i < n; ++i) {
    sets.push_back(ReformulateAtom(q, q.body()[i]));
    uint64_t size = sets.back().size();
    if (total > options_.max_cqs / size + 1) {
      return Status::ResourceExhausted(
          "UCQ reformulation exceeds max_cqs = " +
          std::to_string(options_.max_cqs));
    }
    total *= size;
  }
  if (total > options_.max_cqs) {
    return Status::ResourceExhausted("UCQ reformulation of " +
                                     std::to_string(total) +
                                     " CQs exceeds max_cqs = " +
                                     std::to_string(options_.max_cqs));
  }

  Ucq out;
  std::vector<size_t> odometer(n, 0);
  while (true) {
    Cq member = q;  // copy: head, body, variable table
    for (size_t i = 0; i < n; ++i) {
      const AtomReformulation& m = sets[i][odometer[i]];
      Atom atom = m.atom;
      if (IsFresh(atom.s) || IsFresh(atom.o)) {
        VarId fresh = member.FreshVar();
        if (IsFresh(atom.s)) atom.s = QTerm::Var(fresh);
        if (IsFresh(atom.o)) atom.o = QTerm::Var(fresh);
      }
      (*member.mutable_body())[i] = atom;
      for (VarId rv : m.resource_vars) member.AddResourceVar(rv);
      // Bindable variables are atom-local (checked by AtomsIndependent), so
      // the substitution only affects the head.
      for (const auto& [v, c] : m.bindings) member.Substitute(v, c);
    }
    out.Add(std::move(member));
    // Advance the odometer.
    size_t pos = 0;
    while (pos < n) {
      if (++odometer[pos] < sets[pos].size()) break;
      odometer[pos] = 0;
      ++pos;
    }
    if (pos == n) break;
  }
  return out;
}

Result<Ucq> Reformulator::ReformulateByWorklist(const Cq& q) const {
  std::vector<Cq> result;
  std::unordered_set<std::string> seen;
  std::deque<size_t> worklist;

  result.push_back(q);
  seen.insert(q.CanonicalKey());
  worklist.push_back(0);

  std::vector<AtomReformulation> step;
  while (!worklist.empty()) {
    size_t idx = worklist.front();
    worklist.pop_front();
    const size_t num_atoms = result[idx].body().size();
    for (size_t i = 0; i < num_atoms; ++i) {
      AtomReformulation member;
      member.atom = result[idx].body()[i];
      step.clear();
      ApplyRules(result[idx], member, &step);
      for (const AtomReformulation& m : step) {
        Cq next = result[idx];
        Atom atom = m.atom;
        if (IsFresh(atom.s) || IsFresh(atom.o)) {
          VarId fresh = next.FreshVar();
          if (IsFresh(atom.s)) atom.s = QTerm::Var(fresh);
          if (IsFresh(atom.o)) atom.o = QTerm::Var(fresh);
        }
        (*next.mutable_body())[i] = atom;
        for (VarId rv : m.resource_vars) next.AddResourceVar(rv);
        for (const auto& [v, c] : m.bindings) next.Substitute(v, c);
        std::string key = next.CanonicalKey();
        if (seen.insert(std::move(key)).second) {
          if (result.size() >= options_.max_cqs) {
            return Status::ResourceExhausted(
                "UCQ reformulation exceeds max_cqs = " +
                std::to_string(options_.max_cqs));
          }
          result.push_back(std::move(next));
          worklist.push_back(result.size() - 1);
        }
      }
    }
  }
  return Ucq(std::move(result));
}

Result<Ucq> Reformulator::Reformulate(const Cq& q) const {
  if (q.body().empty()) {
    return Status::InvalidArgument("cannot reformulate an empty BGP");
  }
  Result<Ucq> result = (!options_.force_worklist && AtomsIndependent(q))
                           ? ReformulateByProduct(q)
                           : ReformulateByWorklist(q);
  if (result.ok() && options_.minimize &&
      result->size() <= options_.minimize_threshold) {
    return query::MinimizeUcq(*result, dict_);
  }
  return result;
}

Result<uint64_t> Reformulator::CountReformulations(const Cq& q) const {
  if (q.body().empty()) {
    return Status::InvalidArgument("cannot reformulate an empty BGP");
  }
  if (!options_.force_worklist && AtomsIndependent(q)) {
    // Closed form: the UCQ is the product of the per-atom member sets.
    uint64_t total = 1;
    for (const Atom& atom : q.body()) {
      uint64_t size = ReformulateAtom(q, atom).size();
      if (size != 0 && total > UINT64_MAX / size) {
        return Status::ResourceExhausted("reformulation count overflows");
      }
      total *= size;
    }
    return total;
  }
  RDFREF_ASSIGN_OR_RETURN(Ucq ucq, ReformulateByWorklist(q));
  return static_cast<uint64_t>(ucq.size());
}

}  // namespace reformulation
}  // namespace rdfref
