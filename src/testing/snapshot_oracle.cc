#include "testing/snapshot_oracle.h"

#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/synchronization.h"
#include "engine/evaluator.h"
#include "reformulation/reformulator.h"
#include "rdf/vocab.h"
#include "schema/schema.h"
#include "storage/store.h"
#include "storage/version_set.h"
#include "testing/reference_eval.h"

namespace rdfref {
namespace testing {

namespace {

namespace vocab = rdf::vocab;

/// The fixed part of both relations: the scenario's database indexed as the
/// VersionSet's base, plus q's UCQ reformulation (computed once — the
/// schema never changes during the churn, so the reformulation is valid at
/// every epoch).
struct SnapshotHarness {
  rdf::Graph graph;
  schema::Schema schema;
  std::unique_ptr<storage::Store> base;
  query::Ucq ucq;
  bool reformulated = false;  // false: budget blown, relations are vacuous
};

SnapshotHarness BuildHarness(const Scenario& sc, const query::Cq& q) {
  SnapshotHarness h;
  h.graph = sc.graph.Clone();
  h.schema = schema::Schema::FromGraph(h.graph);
  h.schema.Saturate();
  h.schema.EmitTriples(&h.graph);
  h.base = std::make_unique<storage::Store>(h.graph);
  reformulation::Reformulator ref(&h.schema, {}, &h.graph.dict());
  auto ucq = ref.Reformulate(q);
  if (!ucq.ok()) return h;
  h.ucq = std::move(*ucq);
  h.reformulated = true;
  return h;
}

/// One random operation against the versioned store. Inserts draw fresh
/// facts over the scenario's vocabulary (the dictionary is never touched —
/// essential for the threaded relation); removes drain the live pool, which
/// tracks exactly the instance triples currently visible.
void ApplyRandomOp(const Scenario& sc, Rng* rng, storage::VersionSet* versions,
                   std::vector<rdf::Triple>* pool, bool allow_maintenance) {
  const double roll = rng->UniformDouble();
  if (allow_maintenance && roll < 0.15) {
    versions->Freeze();
    return;
  }
  if (allow_maintenance && roll < 0.25) {
    versions->Compact();
    return;
  }
  if (roll < 0.55 && !pool->empty()) {
    const size_t at = rng->Uniform(pool->size());
    versions->Remove((*pool)[at]);
    pool->erase(pool->begin() + at);
    return;
  }
  rdf::TermId s = sc.subjects[rng->Uniform(sc.subjects.size())];
  rdf::Triple t =
      rng->Chance(0.3)
          ? rdf::Triple(s, vocab::kTypeId,
                        sc.classes[rng->Uniform(sc.classes.size())])
          : rdf::Triple(s, sc.properties[rng->Uniform(sc.properties.size())],
                        sc.subjects[rng->Uniform(sc.subjects.size())]);
  if (versions->Insert(t)) pool->push_back(t);
}

/// From-scratch ground truth: index the snapshot's materialized triple set
/// as a pristine Store and evaluate against that. Bit-identity with
/// pinned-snapshot evaluation is the whole claim under test.
engine::Table EvaluateMaterialized(const rdf::Dictionary& dict,
                                   const storage::SnapshotSource& snap,
                                   const query::Ucq& ucq) {
  storage::Store rebuilt(&dict, snap.Materialize());
  engine::Evaluator evaluator(&rebuilt);
  return evaluator.EvaluateUcq(ucq);
}

}  // namespace

Divergence CheckSnapshotIsolation(const Scenario& sc, const query::Cq& q,
                                  Rng* rng, int num_ops) {
  SnapshotHarness h = BuildHarness(sc, q);
  if (!h.reformulated) return Divergence::None();
  const rdf::Dictionary& dict = h.graph.dict();

  storage::VersionSet versions(h.base.get());
  storage::SnapshotPtr epoch0 = versions.snapshot();
  engine::Evaluator epoch0_eval(epoch0.get());
  const engine::Table epoch0_answer = epoch0_eval.EvaluateUcq(h.ucq);

  std::vector<rdf::Triple> pool = sc.data_triples;
  for (int op = 0; op < num_ops; ++op) {
    ApplyRandomOp(sc, rng, &versions, &pool, /*allow_maintenance=*/true);

    storage::SnapshotPtr snap = versions.snapshot();
    engine::Evaluator pinned(snap.get());
    engine::Table fast = pinned.EvaluateUcq(h.ucq);
    engine::Table expected = EvaluateMaterialized(dict, *snap, h.ucq);
    Divergence d =
        CompareBitForBit("snapshot:epoch=" + std::to_string(snap->epoch()),
                         fast, expected, q, dict);
    if (d.found) return d;

    // The epoch-0 pin is immune to everything that happened since.
    engine::Table again = epoch0_eval.EvaluateUcq(h.ucq);
    d = CompareBitForBit("snapshot:pinned", again, epoch0_answer, q, dict);
    if (d.found) return d;
  }
  return Divergence::None();
}

Divergence CheckConcurrentSnapshots(
    const Scenario& sc, const query::Cq& q, uint64_t seed,
    const ConcurrentSnapshotOptions& options) {
  SnapshotHarness h = BuildHarness(sc, q);
  if (!h.reformulated) return Divergence::None();
  const rdf::Dictionary& dict = h.graph.dict();

  storage::VersionSet versions(h.base.get());
  storage::VersionSetOptions maintenance;
  maintenance.freeze_threshold = 24;  // small: force churn inside the test
  maintenance.compact_min_runs = 2;
  versions.StartBackgroundCompaction(maintenance);

  common::Mutex mu;
  Divergence first;
  auto record = [&mu, &first](const Divergence& d) {
    if (!d.found) return;
    common::MutexLock lock(&mu);
    if (!first.found) first = d;
  };

  // The writer: random inserts/removes with explicit Freeze/Compact
  // interleaved, racing the background maintenance thread and the readers.
  std::thread writer([&] {
    Rng wrng(seed * 0x9E3779B97F4A7C15ULL + 0xC0C);
    std::vector<rdf::Triple> pool = sc.data_triples;
    int freezes = 0;
    for (int op = 0; op < options.writer_ops; ++op) {
      ApplyRandomOp(sc, &wrng, &versions, &pool, /*allow_maintenance=*/false);
      if (options.freeze_every > 0 && (op + 1) % options.freeze_every == 0) {
        ++freezes;
        if (options.compact_every > 0 && freezes % options.compact_every == 0) {
          versions.Compact();
        } else {
          versions.Freeze();
        }
      }
    }
  });

  // Readers: whatever epoch a pin lands on, pinned evaluation must be
  // bit-identical to from-scratch evaluation over that epoch's
  // materialization, and deterministic on re-evaluation.
  std::vector<std::thread> readers;
  readers.reserve(options.reader_threads);
  for (int r = 0; r < options.reader_threads; ++r) {
    readers.emplace_back([&] {
      for (int c = 0; c < options.checks_per_reader; ++c) {
        storage::SnapshotPtr snap = versions.snapshot();
        engine::Evaluator pinned(snap.get());
        engine::Table fast = pinned.EvaluateUcq(h.ucq);
        engine::Table expected = EvaluateMaterialized(dict, *snap, h.ucq);
        record(CompareBitForBit(
            "concurrent:epoch=" + std::to_string(snap->epoch()), fast,
            expected, q, dict));
        engine::Table again = pinned.EvaluateUcq(h.ucq);
        record(CompareBitForBit("concurrent:redo", again, fast, q, dict));
      }
    });
  }

  writer.join();
  for (std::thread& t : readers) t.join();
  versions.StopBackgroundCompaction();
  common::MutexLock lock(&mu);
  return first;
}

}  // namespace testing
}  // namespace rdfref
