#ifndef RDFREF_TESTING_REFERENCE_EVAL_H_
#define RDFREF_TESTING_REFERENCE_EVAL_H_

#include <string>

#include "engine/table.h"
#include "query/cq.h"
#include "query/ucq.h"
#include "rdf/dictionary.h"
#include "storage/triple_source.h"
#include "testing/oracle.h"
#include "testing/scenario.h"

namespace rdfref {
namespace testing {

/// \brief Bit-for-bit table comparison: column labels, row order, every
/// TermId. Returns a divergence tagged `relation` (with the query appended
/// to the detail) on the first difference. Shared by the differential
/// relations that demand byte-identical answers (columnar vs reference,
/// pinned snapshot vs materialized rebuild).
Divergence CompareBitForBit(const std::string& relation,
                            const engine::Table& columnar,
                            const engine::Table& reference, const query::Cq& q,
                            const rdf::Dictionary& dict);

/// \brief Reference row-materializing evaluator: the pre-columnar engine,
/// retained verbatim as an oracle. It runs the same greedy join order, but
/// as a std::function-recursive index nested-loop join over per-triple Scan
/// callbacks, heap-allocating one row vector per emitted tuple and
/// deduplicating through a set of row vectors — the exact algorithm the
/// columnar batch engine replaced. Slow by design; its only job is to be
/// obviously correct and independently derived.
engine::Table ReferenceEvaluateCq(const storage::TripleSource& source,
                                  const query::Cq& q);

/// \brief Member-by-member union with a single seed-order dedup — the
/// reference UCQ path.
engine::Table ReferenceEvaluateUcq(const storage::TripleSource& source,
                                   const query::Ucq& ucq);

/// \brief Differential check: the columnar engine (sequential and parallel)
/// must match the reference evaluator *bit for bit* — same column labels,
/// same row order, same TermId in every slot — on the plain CQ and on its
/// full UCQ reformulation over the scenario's explicit database.
Divergence CheckColumnarVsReference(const Scenario& sc, const query::Cq& q);

}  // namespace testing
}  // namespace rdfref

#endif  // RDFREF_TESTING_REFERENCE_EVAL_H_
