#include "testing/oracle.h"

#include <span>
#include <sstream>
#include <utility>

namespace rdfref {
namespace testing {

std::set<DecodedRow> DecodeRows(const engine::Table& table,
                                const rdf::Dictionary& dict) {
  std::set<DecodedRow> out;
  for (size_t r = 0; r < table.NumRows(); ++r) {
    const std::span<const rdf::TermId> row = table.row(r);
    DecodedRow decoded;
    decoded.reserve(row.size());
    for (rdf::TermId id : row) decoded.push_back(dict.Lookup(id));
    out.insert(std::move(decoded));
  }
  return out;
}

std::string RowSetPreview(const std::set<DecodedRow>& rows, size_t max_rows) {
  std::ostringstream os;
  os << rows.size() << " row(s)";
  size_t shown = 0;
  for (const DecodedRow& row : rows) {
    if (shown++ >= max_rows) {
      os << " ...";
      break;
    }
    os << (shown == 1 ? ": " : " | ");
    for (size_t i = 0; i < row.size(); ++i) {
      if (i) os << " ";
      os << row[i].ToString();
    }
  }
  return os.str();
}

query::Cq TranslateQuery(const query::Cq& q, const rdf::Dictionary& from,
                         rdf::Dictionary* to) {
  query::Cq out;
  for (query::VarId v = 0; v < q.num_vars(); ++v) out.AddVar(q.var_name(v));
  auto xlate = [&](query::QTerm t) {
    if (t.is_var) return t;
    return query::QTerm::Const(to->Intern(from.Lookup(t.term())));
  };
  for (const query::Atom& a : q.body()) {
    out.AddAtom(query::Atom(xlate(a.s), xlate(a.p), xlate(a.o)));
  }
  for (query::QTerm h : q.head()) out.AddHead(xlate(h));
  for (query::VarId v : q.resource_vars()) out.AddResourceVar(v);
  return out;
}

rdf::Triple TranslateTriple(const rdf::Triple& t, const rdf::Dictionary& from,
                            rdf::Dictionary* to) {
  return rdf::Triple(to->Intern(from.Lookup(t.s)),
                     to->Intern(from.Lookup(t.p)),
                     to->Intern(from.Lookup(t.o)));
}

namespace {

/// One-line diff of two decoded row sets (what's missing / spurious).
std::string DiffRowSets(const std::set<DecodedRow>& expected,
                        const std::set<DecodedRow>& got) {
  std::ostringstream os;
  size_t missing = 0, spurious = 0;
  for (const DecodedRow& r : expected) missing += got.count(r) == 0;
  for (const DecodedRow& r : got) spurious += expected.count(r) == 0;
  os << "expected " << RowSetPreview(expected) << "; got "
     << RowSetPreview(got) << " (" << missing << " missing, " << spurious
     << " spurious)";
  return os.str();
}

}  // namespace

Oracle::Oracle(const Scenario& sc, Options options)
    : options_(std::move(options)),
      scenario_dict_(&sc.graph.dict()),
      answerer_(std::make_unique<api::QueryAnswerer>(sc.graph.Clone())) {}

Result<engine::Table> Oracle::Answer(const query::Cq& q, api::Strategy s,
                                     const api::AnswerOptions& options) {
  auto table = answerer_->Answer(q, s, nullptr, options);
  if (table.ok() && options_.mutate) options_.mutate(s, &*table);
  return table;
}

Divergence Oracle::Check(const query::Cq& scenario_q) {
  const query::Cq q =
      TranslateQuery(scenario_q, *scenario_dict_, &answerer_->dict());
  const rdf::Dictionary& dict = answerer_->dict();
  auto sat = Answer(q, api::Strategy::kSaturation);
  if (!sat.ok()) {
    return Divergence::Of("oracle:SAT",
                          "ground truth failed: " + sat.status().ToString());
  }
  const std::set<DecodedRow> expected = DecodeRows(*sat, dict);

  const api::Strategy strategies[] = {
      api::Strategy::kRefUcq, api::Strategy::kRefScq, api::Strategy::kRefGcov,
      api::Strategy::kDatalog};
  for (api::Strategy s : strategies) {
    auto got = Answer(q, s);
    const std::string name = std::string("oracle:") + api::StrategyName(s);
    if (!got.ok()) return Divergence::Of(name, got.status().ToString());
    std::set<DecodedRow> rows = DecodeRows(*got, dict);
    if (rows != expected) {
      return Divergence::Of(name, DiffRowSets(expected, rows) +
                                      "\nquery: " + q.ToString(dict));
    }
  }

  if (options_.check_minimized) {
    api::AnswerOptions minimized;
    minimized.reform.minimize = true;
    auto pruned = Answer(q, api::Strategy::kRefUcq, minimized);
    if (!pruned.ok()) {
      return Divergence::Of("oracle:REF-UCQ-minimized",
                            pruned.status().ToString());
    }
    std::set<DecodedRow> rows = DecodeRows(*pruned, dict);
    if (rows != expected) {
      return Divergence::Of("oracle:REF-UCQ-minimized",
                            DiffRowSets(expected, rows) +
                                "\nquery: " + q.ToString(dict));
    }
  }

  if (options_.check_incomplete_subset) {
    auto incomplete = Answer(q, api::Strategy::kRefIncomplete);
    if (!incomplete.ok()) {
      return Divergence::Of("oracle:REF-INCOMPLETE",
                            incomplete.status().ToString());
    }
    for (const DecodedRow& row : DecodeRows(*incomplete, dict)) {
      if (!expected.count(row)) {
        std::set<DecodedRow> one = {row};
        return Divergence::Of(
            "oracle:REF-INCOMPLETE",
            "incomplete Ref produced a spurious answer " +
                RowSetPreview(one) + "\nquery: " + q.ToString(dict));
      }
    }
  }
  return Divergence::None();
}

}  // namespace testing
}  // namespace rdfref
