#include "testing/view_oracle.h"

#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/synchronization.h"
#include "engine/evaluator.h"
#include "engine/view_cache.h"
#include "query/cover.h"
#include "reformulation/reformulator.h"
#include "rdf/vocab.h"
#include "schema/schema.h"
#include "storage/store.h"
#include "storage/version_set.h"
#include "testing/reference_eval.h"

namespace rdfref {
namespace testing {

namespace {

namespace vocab = rdf::vocab;

/// The fixed part of both relations: the scenario's database indexed as
/// the VersionSet's base, q's UCQ reformulation, and (for the JUCQ leg)
/// the singleton-cover fragments with their reformulations. The schema
/// never changes during the churn, so everything is valid at every epoch.
struct ViewHarness {
  rdf::Graph graph;
  schema::Schema schema;
  std::unique_ptr<storage::Store> base;
  query::Ucq ucq;
  std::vector<query::Cq> fragment_queries;
  std::vector<query::Ucq> fragment_ucqs;
  bool reformulated = false;  // false: budget blown, relations are vacuous
  bool jucq = false;          // fragments reformulated too
};

ViewHarness BuildHarness(const Scenario& sc, const query::Cq& q) {
  ViewHarness h;
  h.graph = sc.graph.Clone();
  h.schema = schema::Schema::FromGraph(h.graph);
  h.schema.Saturate();
  h.schema.EmitTriples(&h.graph);
  h.base = std::make_unique<storage::Store>(h.graph);
  reformulation::Reformulator ref(&h.schema, {}, &h.graph.dict());
  auto ucq = ref.Reformulate(q);
  if (!ucq.ok()) return h;
  h.ucq = std::move(*ucq);
  h.reformulated = true;
  if (q.body().size() >= 2) {
    query::Cover cover = query::Cover::Singletons(q.body().size());
    h.fragment_queries = cover.FragmentQueries(q);
    h.jucq = true;
    for (const query::Cq& fq : h.fragment_queries) {
      auto fucq = ref.Reformulate(fq);
      if (!fucq.ok()) {
        h.jucq = false;
        break;
      }
      h.fragment_ucqs.push_back(std::move(*fucq));
    }
  }
  return h;
}

/// One random operation against the versioned store (the snapshot-oracle
/// recipe): inserts draw fresh facts over the scenario's vocabulary — the
/// dictionary is never touched, essential for the threaded relation —
/// removes drain the live pool of currently visible instance triples.
void ApplyRandomOp(const Scenario& sc, Rng* rng, storage::VersionSet* versions,
                   std::vector<rdf::Triple>* pool, bool allow_maintenance) {
  const double roll = rng->UniformDouble();
  if (allow_maintenance && roll < 0.15) {
    versions->Freeze();
    return;
  }
  if (allow_maintenance && roll < 0.25) {
    versions->Compact();
    return;
  }
  if (roll < 0.55 && !pool->empty()) {
    const size_t at = rng->Uniform(pool->size());
    versions->Remove((*pool)[at]);
    pool->erase(pool->begin() + at);
    return;
  }
  rdf::TermId s = sc.subjects[rng->Uniform(sc.subjects.size())];
  rdf::Triple t =
      rng->Chance(0.3)
          ? rdf::Triple(s, vocab::kTypeId,
                        sc.classes[rng->Uniform(sc.classes.size())])
          : rdf::Triple(s, sc.properties[rng->Uniform(sc.properties.size())],
                        sc.subjects[rng->Uniform(sc.subjects.size())]);
  if (versions->Insert(t)) pool->push_back(t);
}

/// Cold-vs-cached round at one pinned snapshot: fill, then replay. Every
/// table must be bit-identical to the uncached evaluation — the cached
/// path promises the exact same plan on the exact same visible set.
Divergence CheckAtSnapshot(const ViewHarness& h, engine::ViewCache* cache,
                           const storage::SnapshotPtr& snap,
                           const query::Cq& q, const std::string& tag) {
  const rdf::Dictionary& dict = h.graph.dict();
  engine::Evaluator cold(snap.get());
  const engine::Table expected = cold.EvaluateUcq(h.ucq);

  engine::Evaluator cached(snap.get());
  cached.set_view_cache(cache, snap->epoch());
  for (const char* phase : {"fill", "hit"}) {
    Result<engine::Table> got = cached.EvaluateUcqView(q, h.ucq, Deadline());
    if (!got.ok()) {
      Divergence d;
      d.found = true;
      d.relation = "cached:" + std::string(phase) + tag;
      d.detail = "cached evaluation failed: " + got.status().ToString();
      return d;
    }
    Divergence d = CompareBitForBit("cached:" + std::string(phase) + tag,
                                    *got, expected, q, dict);
    if (d.found) return d;
  }

  if (h.jucq) {
    engine::Table jucq_expected =
        cold.EvaluateJucq(q, h.fragment_queries, h.fragment_ucqs);
    for (const char* phase : {"jucq-fill", "jucq-hit"}) {
      Result<engine::Table> got = cached.EvaluateJucq(
          q, h.fragment_queries, h.fragment_ucqs, Deadline());
      if (!got.ok()) {
        Divergence d;
        d.found = true;
        d.relation = "cached:" + std::string(phase) + tag;
        d.detail = "cached JUCQ evaluation failed: " + got.status().ToString();
        return d;
      }
      Divergence d = CompareBitForBit("cached:" + std::string(phase) + tag,
                                      *got, jucq_expected, q, dict);
      if (d.found) return d;
    }
  }
  return Divergence::None();
}

}  // namespace

Divergence CheckCachedEquivalence(const Scenario& sc, const query::Cq& q,
                                  Rng* rng, int num_ops) {
  ViewHarness h = BuildHarness(sc, q);
  if (!h.reformulated) return Divergence::None();

  // The cache outlives the version set that holds the observer pointer.
  engine::ViewCache cache;
  storage::VersionSet versions(h.base.get());
  versions.SetWriteObserver(&cache);

  // Load phase: fill and replay on the pristine database.
  Divergence d = CheckAtSnapshot(h, &cache, versions.snapshot(), q, ":load");
  if (d.found) return d;

  // Insert/remove/maintenance phase: every op moves the epoch (or reshapes
  // the run structure); the cache must re-prove or re-fill, never go
  // stale.
  std::vector<rdf::Triple> pool = sc.data_triples;
  for (int op = 0; op < num_ops; ++op) {
    ApplyRandomOp(sc, rng, &versions, &pool, /*allow_maintenance=*/true);
    storage::SnapshotPtr snap = versions.snapshot();
    d = CheckAtSnapshot(h, &cache, snap, q,
                        ":epoch=" + std::to_string(snap->epoch()));
    if (d.found) return d;
  }

  // Compact phase: fold everything flat, then check once more — the
  // republished base must serve the same answers through the same cache.
  versions.Freeze();
  versions.Compact();
  d = CheckAtSnapshot(h, &cache, versions.snapshot(), q, ":compacted");
  if (d.found) return d;

  versions.SetWriteObserver(nullptr);
  return Divergence::None();
}

Divergence CheckConcurrentCached(const Scenario& sc, const query::Cq& q,
                                 uint64_t seed,
                                 const ConcurrentCachedOptions& options) {
  ViewHarness h = BuildHarness(sc, q);
  if (!h.reformulated) return Divergence::None();
  const rdf::Dictionary& dict = h.graph.dict();

  engine::ViewCache cache;
  storage::VersionSet versions(h.base.get());
  versions.SetWriteObserver(&cache);
  storage::VersionSetOptions maintenance;
  maintenance.freeze_threshold = 24;  // small: force churn inside the test
  maintenance.compact_min_runs = 2;
  versions.StartBackgroundCompaction(maintenance);

  common::Mutex mu;
  Divergence first;
  auto record = [&mu, &first](const Divergence& d) {
    if (!d.found) return;
    common::MutexLock lock(&mu);
    if (!first.found) first = d;
  };

  // The writer: random inserts/removes with explicit Freeze/Compact
  // interleaved, racing the background maintenance thread and the readers'
  // cache probes/installs.
  std::thread writer([&] {
    Rng wrng(seed * 0x9E3779B97F4A7C15ULL + 0xCAC4E);
    std::vector<rdf::Triple> pool = sc.data_triples;
    int freezes = 0;
    for (int op = 0; op < options.writer_ops; ++op) {
      ApplyRandomOp(sc, &wrng, &versions, &pool, /*allow_maintenance=*/false);
      if (options.freeze_every > 0 && (op + 1) % options.freeze_every == 0) {
        ++freezes;
        if (options.compact_every > 0 && freezes % options.compact_every == 0) {
          versions.Compact();
        } else {
          versions.Freeze();
        }
      }
    }
  });

  // Readers: whatever epoch a pin lands on and whatever install/invalidate
  // interleaving the shared cache goes through, cache-mediated evaluation
  // must match cold evaluation of the same plan on the same snapshot —
  // twice, so at least one call per round exercises the replay path.
  std::vector<std::thread> readers;
  readers.reserve(options.reader_threads);
  for (int r = 0; r < options.reader_threads; ++r) {
    readers.emplace_back([&] {
      for (int c = 0; c < options.checks_per_reader; ++c) {
        storage::SnapshotPtr snap = versions.snapshot();
        engine::Evaluator cold(snap.get());
        engine::Table expected = cold.EvaluateUcq(h.ucq);
        engine::Evaluator cached(snap.get());
        cached.set_view_cache(&cache, snap->epoch());
        for (const char* phase : {"probe", "redo"}) {
          Result<engine::Table> got =
              cached.EvaluateUcqView(q, h.ucq, Deadline());
          if (!got.ok()) {
            Divergence d;
            d.found = true;
            d.relation = std::string("concurrent:cached:") + phase;
            d.detail = "cached evaluation failed: " + got.status().ToString();
            record(d);
            continue;
          }
          record(CompareBitForBit(
              std::string("concurrent:cached:") + phase +
                  ":epoch=" + std::to_string(snap->epoch()),
              *got, expected, q, dict));
        }
      }
    });
  }

  writer.join();
  for (std::thread& t : readers) t.join();
  versions.StopBackgroundCompaction();
  versions.SetWriteObserver(nullptr);
  common::MutexLock lock(&mu);
  return first;
}

}  // namespace testing
}  // namespace rdfref
