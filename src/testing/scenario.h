#ifndef RDFREF_TESTING_SCENARIO_H_
#define RDFREF_TESTING_SCENARIO_H_

#include <cstdint>
#include <vector>

#include "common/hash.h"
#include "query/cq.h"
#include "query/ucq.h"
#include "rdf/graph.h"
#include "rdf/triple.h"

namespace rdfref {
namespace testing {

/// \brief Where a scenario's graph comes from.
enum class ScenarioSource {
  /// The random pool generator below (the default).
  kRandom,
  /// The SP2Bench-style bibliographic generator (datagen::Sp2b): deep
  /// class/property hierarchies, cyclic Zipf-skewed citations. The pool
  /// knobs below are ignored; `sp2b_documents` scales the graph. Queries
  /// then draw constants from the sp2b vocabulary, which reaches shapes
  /// the uniform pools never produce (8-deep reformulation fans, cycles).
  kSp2b,
};

/// \brief Knobs of the random scenario generator. The defaults reproduce
/// the shapes the original equivalence property test used; the fuzz driver
/// scales them up and down to hunt corner cases (tiny schemas where one
/// constraint dominates, dense DAGs where closures explode, sparse data
/// where most reformulation members are empty).
struct ScenarioOptions {
  ScenarioSource source = ScenarioSource::kRandom;
  /// Document count of a kSp2b scenario: min + U(extra + 1), seed-drawn so
  /// different fuzz seeds exercise different population sizes.
  int sp2b_min_documents = 24, sp2b_extra_documents = 40;
  /// Vocabulary pools: count = min + U(extra + 1).
  int min_classes = 4, extra_classes = 3;
  int min_properties = 3, extra_properties = 2;
  int min_subjects = 12, extra_subjects = 11;
  int num_literals = 3;
  /// RDFS constraint counts (subClassOf / subPropertyOf edges form random
  /// DAG-like relations; cycles are allowed — the DB fragment handles them).
  int min_subclass = 2, extra_subclass = 3;
  int min_subproperty = 1, extra_subproperty = 2;
  int min_domain = 0, extra_domain = 2;
  int min_range = 0, extra_range = 2;
  /// Instance triples and their mix.
  int min_triples = 30, extra_triples = 39;
  double type_assertion_rate = 0.3;   ///< P(fact is s rdf:type C)
  double literal_object_rate = 0.25;  ///< P(property fact has literal object)
};

/// \brief A generated differential-testing scenario: one RDF graph (schema
/// + instance triples) plus the vocabulary pools queries draw constants
/// from and the explicit triple lists the shrinker minimizes over.
struct Scenario {
  rdf::Graph graph;
  std::vector<rdf::TermId> classes;
  std::vector<rdf::TermId> properties;
  std::vector<rdf::TermId> subjects;
  std::vector<rdf::TermId> literals;
  /// The generated RDFS constraint triples, in generation order.
  std::vector<rdf::Triple> schema_triples;
  /// The generated instance triples (deduplicated), in generation order.
  std::vector<rdf::Triple> data_triples;
};

/// \brief Draws a scenario from a seed (deterministic; independent of
/// platform and of any other consumer of the seed).
Scenario GenerateScenario(uint64_t seed, const ScenarioOptions& options = {});

/// \brief Rebuilds a scenario holding exactly `schema` + `data`, with a
/// dictionary id-compatible with `base` (pools are copied so query
/// generation still works). The shrinker calls this for every removal
/// candidate.
Scenario RestrictScenario(const Scenario& base,
                          const std::vector<rdf::Triple>& schema,
                          const std::vector<rdf::Triple>& data);

/// \brief Knobs of the random conjunctive-query generator. Defaults match
/// the original equivalence property test: 1-3 atoms over a pool of 3
/// variables, variables allowed in property and class positions.
struct QueryOptions {
  int var_pool = 3;
  int min_atoms = 1, extra_atoms = 2;
  double subject_var_rate = 0.7;   ///< P(subject is a variable)
  double type_atom_rate = 0.4;     ///< P(atom is an rdf:type atom)
  double property_atom_rate = 0.5; ///< P(constant-property atom); the rest
                                   ///< get a *variable* property
  double class_const_rate = 0.7;   ///< P(type atom names a constant class)
  double object_var_rate = 0.6;    ///< P(property atom's object is a var)
};

/// \brief Draws a random CQ over the scenario's vocabulary. The head binds
/// every body variable (complete bindings make divergences visible). Always
/// returns a safe query with at least one head variable.
query::Cq GenerateQuery(const Scenario& sc, Rng* rng,
                        const QueryOptions& options = {});

/// \brief Draws a random UCQ: 1 + U(max_extra_members + 1) member CQs of
/// equal head arity (AnswerUnion requires it).
query::Ucq GenerateUcq(const Scenario& sc, Rng* rng, int max_extra_members,
                       const QueryOptions& options = {});

}  // namespace testing
}  // namespace rdfref

#endif  // RDFREF_TESTING_SCENARIO_H_
