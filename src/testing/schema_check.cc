#include "testing/schema_check.h"

#include <set>
#include <unordered_map>
#include <unordered_set>

#include "rdf/vocab.h"

namespace rdfref {
namespace testing {

namespace {
namespace vocab = rdf::vocab;

bool IsSchemaProperty(rdf::TermId p) {
  return p == vocab::kSubClassOfId || p == vocab::kSubPropertyOfId ||
         p == vocab::kDomainId || p == vocab::kRangeId;
}

std::string Show(const rdf::Dictionary& dict, rdf::TermId id) {
  return dict.Lookup(id).ToString();
}

}  // namespace

std::vector<std::string> CheckSchemaConsistency(
    const rdf::Graph& graph, const SchemaCheckOptions& options) {
  const rdf::Dictionary& dict = graph.dict();
  std::vector<std::string> violations;
  auto violation = [&](std::string line) {
    violations.push_back(std::move(line));
  };

  // Pass 1: collect the declared vocabulary from the constraint triples.
  std::unordered_set<rdf::TermId> declared_properties;
  std::unordered_set<rdf::TermId> declared_classes;
  std::unordered_set<rdf::TermId> ranged_properties;
  for (const rdf::Triple& t : graph.triples()) {
    if (!IsSchemaProperty(t.p)) continue;
    if (IsSchemaProperty(t.s) || t.s == vocab::kTypeId ||
        IsSchemaProperty(t.o) || t.o == vocab::kTypeId) {
      violation("schema triple constrains an RDFS built-in: " +
                Show(dict, t.s) + " " + Show(dict, t.p) + " " +
                Show(dict, t.o));
    }
    if (!dict.Lookup(t.s).is_uri() || !dict.Lookup(t.o).is_uri()) {
      violation("schema triple with a non-URI term: " + Show(dict, t.s) +
                " " + Show(dict, t.p) + " " + Show(dict, t.o));
      continue;
    }
    switch (t.p) {
      case vocab::kSubClassOfId:
        declared_classes.insert(t.s);
        declared_classes.insert(t.o);
        break;
      case vocab::kSubPropertyOfId:
        declared_properties.insert(t.s);
        declared_properties.insert(t.o);
        break;
      case vocab::kDomainId:
        declared_properties.insert(t.s);
        declared_classes.insert(t.o);
        break;
      case vocab::kRangeId:
        declared_properties.insert(t.s);
        declared_classes.insert(t.o);
        ranged_properties.insert(t.s);
        break;
      default:
        break;
    }
  }

  // Pass 2: check every data triple against the declared vocabulary.
  // Deduplicate per (property) and per (class) so one undeclared property
  // used a thousand times yields one violation, not a thousand.
  std::set<rdf::TermId> reported_properties;
  std::set<rdf::TermId> reported_classes;
  std::unordered_map<rdf::TermId, bool> literal_only;
  for (const rdf::Triple& t : graph.triples()) {
    if (IsSchemaProperty(t.p)) continue;
    if (dict.Lookup(t.s).is_literal()) {
      violation("literal subject: " + Show(dict, t.s) + " " +
                Show(dict, t.p) + " " + Show(dict, t.o));
    }
    if (t.p == vocab::kTypeId) {
      if (!declared_classes.count(t.o) &&
          reported_classes.insert(t.o).second) {
        violation("asserted class not in the schema: " + Show(dict, t.o));
      }
      continue;
    }
    const bool object_literal = dict.Lookup(t.o).is_literal();
    if (ranged_properties.count(t.p) && object_literal) {
      violation("property with a declared range takes a literal: " +
                Show(dict, t.s) + " " + Show(dict, t.p) + " " +
                Show(dict, t.o));
    }
    if (!declared_properties.count(t.p)) {
      auto it = literal_only.find(t.p);
      if (it == literal_only.end()) {
        literal_only.emplace(t.p, object_literal);
      } else {
        it->second = it->second && object_literal;
      }
    }
  }
  for (const auto& [p, only_literals] : literal_only) {
    if (options.allow_undeclared_literal_properties && only_literals) {
      continue;
    }
    if (reported_properties.insert(p).second) {
      violation("property not in the schema: " + Show(dict, p) +
                (only_literals ? " (literal-valued)" : ""));
    }
  }
  return violations;
}

}  // namespace testing
}  // namespace rdfref
