#include "testing/fuzz.h"

#include <utility>

namespace rdfref {
namespace testing {

namespace {

/// Derived deterministic sub-seeds: each relation gets its own stream so
/// adding a relation never perturbs the draws of another.
uint64_t SubSeed(uint64_t seed, int trial, uint64_t salt) {
  Rng rng(seed * 0x9E3779B97F4A7C15ULL + trial * 31 + salt);
  return rng.Next();
}

/// Runs every enabled check for one (scenario, query) pair; the first
/// divergence wins. `replay` must be stable so the shrinker can re-run the
/// exact failing relation on reduced candidates.
Divergence RunChecks(const Scenario& sc, const query::Cq& q,
                     const FuzzOptions& options, uint64_t seed, int trial,
                     uint64_t* checks_run) {
  auto count = [&](Divergence d) {
    if (checks_run) ++*checks_run;
    return d;
  };

  if (options.check_oracle) {
    Oracle::Options oracle_options;
    oracle_options.mutate = options.mutate;
    Oracle oracle(sc, oracle_options);
    Divergence d = count(oracle.Check(q));
    if (d.found) return d;
  }
  if (options.check_columnar) {
    // Bit-for-bit: the columnar batch engine against the retained
    // row-materializing reference evaluator, sequential and parallel.
    Divergence d = count(CheckColumnarVsReference(sc, q));
    if (d.found) return d;
  }
  if (options.check_encoded) {
    Divergence d = count(CheckEncodedEquivalence(sc, q));
    if (d.found) return d;
  }
  if (options.check_metamorphic) {
    Divergence d = count(CheckThreadInvariance(sc, q, options.thread_settings));
    if (d.found) return d;
    d = count(CheckDeadlineInvariance(sc, q));
    if (d.found) return d;
  }
  if (options.check_federation) {
    Divergence d = count(CheckFederationPartition(
        sc, q, options.federation_endpoints, SubSeed(seed, trial, 0xFED)));
    if (d.found) return d;
  }
  if (options.check_updates) {
    Rng mono_rng(SubSeed(seed, trial, 0x1A5E27));
    Divergence d =
        count(CheckInsertionMonotonicity(sc, q, &mono_rng, options.num_inserts));
    if (d.found) return d;
    if (trial == 0) {
      // The insert/delete soak rebuilds a ground-truth answerer per op;
      // once per seed keeps the run fast without losing coverage.
      Rng upd_rng(SubSeed(seed, trial, 0xD4ED));
      d = count(CheckUpdateConsistency(sc, q, &upd_rng, options.num_update_ops));
      if (d.found) return d;
    }
  }
  if (options.check_snapshots) {
    // Deterministic snapshot-isolation churn: pinned-epoch answers must be
    // bit-identical to from-scratch evaluation at every epoch.
    Rng snap_rng(SubSeed(seed, trial, 0x5A9));
    Divergence d = count(
        CheckSnapshotIsolation(sc, q, &snap_rng, options.num_snapshot_ops));
    if (d.found) return d;
  }
  if (options.check_cached) {
    // Cached vs cold, bit-for-bit, across load/update/compact phases.
    Rng cache_rng(SubSeed(seed, trial, 0xCAC4E));
    Divergence d = count(
        CheckCachedEquivalence(sc, q, &cache_rng, options.num_cached_ops));
    if (d.found) return d;
  }
  if (options.check_concurrent) {
    Divergence d = count(CheckConcurrentSnapshots(
        sc, q, SubSeed(seed, trial, 0xC0C), options.concurrent));
    if (d.found) return d;
    d = count(CheckConcurrentCached(sc, q, SubSeed(seed, trial, 0xCAC),
                                    options.concurrent_cached));
    if (d.found) return d;
  }
  return Divergence::None();
}

}  // namespace

bool RunFuzzSeed(uint64_t seed, const FuzzOptions& options,
                 FuzzReport* report) {
  Scenario sc = GenerateScenario(seed, options.scenario);
  Rng query_rng(seed * 31 + 7);
  ++report->seeds_run;

  for (int trial = 0; trial < options.trials_per_seed; ++trial) {
    query::Cq q = GenerateQuery(sc, &query_rng, options.query);
    ++report->queries_checked;
    Divergence d =
        RunChecks(sc, q, options, seed, trial, &report->checks_run);
    if (!d.found) continue;

    FuzzFailure failure;
    failure.seed = seed;
    failure.trial = trial;
    failure.relation = d.relation;
    failure.detail = d.detail;
    failure.seed_file = EmitSeedFile(seed, trial, d.relation);
    // Concurrent-relation failures are timing-dependent: the shrinker's
    // "same relation must re-fail" predicate would flake, so they are
    // reported at full size.
    const bool concurrent = d.relation.rfind("concurrent", 0) == 0;
    if (options.shrink && !concurrent) {
      // Deterministic predicate: re-run the full check battery (same
      // derived sub-seeds) and require the SAME relation to fail — a
      // different divergence on a reduced candidate is a different bug.
      FailurePredicate fails = [&](const Scenario& candidate,
                                   const query::Cq& candidate_q) {
        Divergence rd = RunChecks(candidate, candidate_q, options, seed,
                                  trial, nullptr);
        return rd.found && rd.relation == d.relation;
      };
      failure.shrunk = Shrink(sc, q, fails);
    } else {
      failure.shrunk.schema_triples = sc.schema_triples;
      failure.shrunk.data_triples = sc.data_triples;
      failure.shrunk.query = q;
    }
    failure.repro_cc =
        EmitReproTest(sc, failure.shrunk,
                      "Seed" + std::to_string(seed) + "Trial" +
                          std::to_string(trial),
                      d.relation);
    report->failures.push_back(std::move(failure));
    if (static_cast<int>(report->failures.size()) >= options.max_failures) {
      return false;
    }
  }
  return true;
}

FuzzReport RunFuzz(uint64_t seed_begin, uint64_t seed_end,
                   const FuzzOptions& options) {
  FuzzReport report;
  for (uint64_t seed = seed_begin; seed <= seed_end; ++seed) {
    if (!RunFuzzSeed(seed, options, &report)) break;
  }
  return report;
}

}  // namespace testing
}  // namespace rdfref
