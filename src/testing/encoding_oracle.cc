#include "testing/encoding_oracle.h"

#include <set>
#include <sstream>
#include <string>

#include "api/query_answering.h"
#include "rdf/vocab.h"

namespace rdfref {
namespace testing {

namespace {

std::string Diagnose(const query::Cq& q, const rdf::Dictionary& dict,
                     const std::set<DecodedRow>& expected,
                     const std::set<DecodedRow>& got) {
  std::ostringstream os;
  os << "expected " << RowSetPreview(expected) << "; got "
     << RowSetPreview(got) << "\nquery: " << q.ToString(dict);
  return os.str();
}

/// Answers q under both reformulation modes and compares the decoded sets
/// against `expected` (saturation ground truth). `stage` labels the phase
/// ("load" / "schema-insert" / "reencode") in the divergence relation.
Divergence CompareModes(api::QueryAnswerer* answerer, const query::Cq& q,
                        const std::set<DecodedRow>& expected,
                        const std::string& stage) {
  api::AnswerOptions encoded;  // use_encoding stays at its default (on)
  api::AnswerOptions classic;
  classic.reform.use_encoding = false;
  for (api::Strategy s : {api::Strategy::kRefUcq, api::Strategy::kRefScq}) {
    for (bool use_encoding : {true, false}) {
      const api::AnswerOptions& options = use_encoding ? encoded : classic;
      auto got = answerer->Answer(q, s, nullptr, options);
      std::string name = "encoded:" + stage + ":" +
                         std::string(api::StrategyName(s)) +
                         (use_encoding ? ":interval" : ":classic");
      if (!got.ok()) return Divergence::Of(name, got.status().ToString());
      std::set<DecodedRow> rows = DecodeRows(*got, answerer->dict());
      if (rows != expected) {
        return Divergence::Of(name,
                              Diagnose(q, answerer->dict(), expected, rows));
      }
    }
  }
  return Divergence::None();
}

Divergence GroundTruth(api::QueryAnswerer* answerer, const query::Cq& q,
                       const std::string& stage,
                       std::set<DecodedRow>* expected) {
  auto sat = answerer->Answer(q, api::Strategy::kSaturation);
  if (!sat.ok()) {
    return Divergence::Of("encoded:" + stage + ":SAT",
                          sat.status().ToString());
  }
  *expected = DecodeRows(*sat, answerer->dict());
  return Divergence::None();
}

}  // namespace

Divergence CheckEncodedEquivalence(const Scenario& sc,
                                   const query::Cq& scenario_q) {
  api::QueryAnswerer answerer(sc.graph.Clone());
  query::Cq q = TranslateQuery(scenario_q, sc.graph.dict(), &answerer.dict());

  // Phase 1: the load-time encoding. Interval reformulation must be
  // answer-set-equal to the classic UCQ members it fused away.
  std::set<DecodedRow> expected;
  Divergence d = GroundTruth(&answerer, q, "load", &expected);
  if (d.found) return d;
  d = CompareModes(&answerer, q, expected, "load");
  if (d.found) return d;

  // Phase 2: grow the schema after load. The new edge escapes the frozen
  // intervals (classic-member fallback); existing intervals must stay sound.
  if (sc.classes.size() >= 2) {
    rdf::Triple edge(sc.classes[0], rdf::vocab::kSubClassOfId,
                     sc.classes[sc.classes.size() / 2]);
    Status st = answerer.InsertTriple(
        TranslateTriple(edge, sc.graph.dict(), &answerer.dict()));
    if (!st.ok()) {
      return Divergence::Of("encoded:schema-insert",
                            "insert failed: " + st.ToString());
    }
    d = GroundTruth(&answerer, q, "schema-insert", &expected);
    if (d.found) return d;
    d = CompareModes(&answerer, q, expected, "schema-insert");
    if (d.found) return d;
  }

  // Phase 3: re-encode at a compaction point. Every id moves again; the
  // escaped edge from phase 2 is folded into fresh intervals. The query is
  // re-translated — all pre-Reencode TermIds are invalidated by contract.
  answerer.Reencode();
  q = TranslateQuery(scenario_q, sc.graph.dict(), &answerer.dict());
  d = GroundTruth(&answerer, q, "reencode", &expected);
  if (d.found) return d;
  return CompareModes(&answerer, q, expected, "reencode");
}

}  // namespace testing
}  // namespace rdfref
