#ifndef RDFREF_TESTING_FUZZ_H_
#define RDFREF_TESTING_FUZZ_H_

#include <cstdint>
#include <string>
#include <vector>

#include "testing/encoding_oracle.h"
#include "testing/metamorphic.h"
#include "testing/oracle.h"
#include "testing/reference_eval.h"
#include "testing/scenario.h"
#include "testing/shrink.h"
#include "testing/snapshot_oracle.h"
#include "testing/view_oracle.h"

namespace rdfref {
namespace testing {

/// \brief Configuration of one differential-fuzzing run: generator shapes,
/// which relation families to check, and the optional bug-injection hook
/// the harness uses to test itself.
struct FuzzOptions {
  ScenarioOptions scenario;
  QueryOptions query;
  /// Random queries drawn per seed.
  int trials_per_seed = 4;

  /// Relation families.
  bool check_oracle = true;       ///< strategy-agreement oracle protocol
  bool check_columnar = true;     ///< columnar engine vs reference evaluator
  bool check_metamorphic = true;  ///< threads / deadline invariance
  bool check_federation = true;   ///< graph partitioning across endpoints
  bool check_updates = true;      ///< monotone insert + DRed delete checks
  bool check_snapshots = true;    ///< single-threaded snapshot isolation
  /// Hierarchy-encoding equivalence: interval reformulation vs the classic
  /// UCQ it fuses, at load, after a schema insert, and across Reencode().
  bool check_encoded = true;
  /// View-cache equivalence: cache-mediated evaluation (fill then replay,
  /// whole unions and JUCQ fragments) vs cold evaluation, bit-for-bit,
  /// across load/update/compact phases. The threaded variant rides the
  /// check_concurrent battery unconditionally.
  bool check_cached = true;
  /// Threaded snapshot churn (fuzz_driver --updates-concurrent): a writer
  /// thread + background compaction race reader threads pinning epochs.
  /// Off by default — concurrent failures are timing-dependent and are
  /// reported unshrunk.
  bool check_concurrent = false;
  std::vector<int> thread_settings = {1, 0, 8};
  int federation_endpoints = 3;
  int num_inserts = 2;       ///< insertions per monotonicity check
  int num_update_ops = 4;    ///< ops per insert/delete consistency check
  int num_snapshot_ops = 6;  ///< ops per snapshot-isolation check
  int num_cached_ops = 6;    ///< ops per view-cache equivalence check
  ConcurrentSnapshotOptions concurrent;
  ConcurrentCachedOptions concurrent_cached;

  /// Corrupts a strategy's answer before the oracle compares — the
  /// mutation check: with a bug injected, the harness MUST catch and
  /// shrink it (see fuzz_driver --inject-bug).
  Oracle::AnswerMutator mutate;

  /// Minimize the first failure and emit repro artifacts.
  bool shrink = true;
  /// Stop fuzzing after this many failures (shrinking dominates cost).
  int max_failures = 1;
};

/// \brief One caught divergence, minimized and ready to file.
struct FuzzFailure {
  uint64_t seed = 0;
  int trial = 0;
  std::string relation;
  std::string detail;
  ShrinkResult shrunk;
  /// Self-contained gtest snippet reproducing the shrunken case.
  std::string repro_cc;
  /// Replayable seed file (fuzz_driver --replay).
  std::string seed_file;
};

/// \brief Aggregate outcome of a fuzzing run.
struct FuzzReport {
  uint64_t seeds_run = 0;
  uint64_t queries_checked = 0;
  uint64_t checks_run = 0;
  std::vector<FuzzFailure> failures;
  bool ok() const { return failures.empty(); }
};

/// \brief Fuzzes one seed: generates a scenario, draws queries, runs the
/// oracle and every enabled metamorphic relation, and shrinks the first
/// divergence. Appends into `report`; returns false once
/// options.max_failures is reached.
bool RunFuzzSeed(uint64_t seed, const FuzzOptions& options,
                 FuzzReport* report);

/// \brief Fuzzes seeds [seed_begin, seed_end].
FuzzReport RunFuzz(uint64_t seed_begin, uint64_t seed_end,
                   const FuzzOptions& options = {});

}  // namespace testing
}  // namespace rdfref

#endif  // RDFREF_TESTING_FUZZ_H_
