#ifndef RDFREF_TESTING_VIEW_ORACLE_H_
#define RDFREF_TESTING_VIEW_ORACLE_H_

#include <cstdint>

#include "query/cq.h"
#include "testing/oracle.h"
#include "testing/scenario.h"

namespace rdfref {
namespace testing {

/// \brief Knobs of the concurrent view-cache metamorphic check.
struct ConcurrentCachedOptions {
  /// Reader threads probing the shared cache.
  int reader_threads = 2;
  /// Insert/remove operations the churning writer performs.
  int writer_ops = 96;
  /// The writer calls Freeze() every this many operations...
  int freeze_every = 12;
  /// ...and Compact() every `compact_every` freezes.
  int compact_every = 3;
  /// Snapshot pin+evaluate rounds per reader.
  int checks_per_reader = 6;
};

/// \brief Deterministic (single-threaded) view-cache equivalence relation:
/// over a VersionSet seeded with the scenario's explicit database and a
/// ViewCache registered as its write observer, demands at load time, after
/// every one of `num_ops` random update/maintenance operations, and again
/// after a final Freeze()+Compact() that
///
///   1. cache-mediated evaluation (Evaluator::EvaluateUcqView — the first
///      call fills, the second replays the install) is bit-identical to
///      cold evaluation of the same reformulation on the same snapshot
///      (relations "cached:fill" / "cached:hit"), and
///   2. when the query has ≥ 2 atoms, JUCQ evaluation under the singleton
///      cover with fragment-level cache probes agrees bit-for-bit with the
///      uncached JUCQ path (relations "cached:jucq-fill" /
///      "cached:jucq-hit").
///
/// Updates between rounds exercise the epoch-window machinery: entries
/// installed at earlier epochs must either prove themselves untouched
/// (footprint-disjoint writes) or miss — never serve a stale answer.
Divergence CheckCachedEquivalence(const Scenario& sc, const query::Cq& q,
                                  Rng* rng, int num_ops);

/// \brief Threaded view-cache relation (fuzz_driver --updates-concurrent,
/// TSan in CI): one writer thread churns the VersionSet (with background
/// compaction running) while reader threads repeatedly pin snapshots and
/// demand that cache-mediated evaluation stays bit-identical to cold
/// evaluation at the pinned epoch — whatever interleaving of installs,
/// window advances, invalidations, and evictions they race through.
/// Relations are prefixed "concurrent:cached"; failures are
/// timing-dependent, so the harness skips shrinking for them.
Divergence CheckConcurrentCached(const Scenario& sc, const query::Cq& q,
                                 uint64_t seed,
                                 const ConcurrentCachedOptions& options);

}  // namespace testing
}  // namespace rdfref

#endif  // RDFREF_TESTING_VIEW_ORACLE_H_
