#include "testing/scenario.h"

#include <set>
#include <string>
#include <utility>

#include "datagen/sp2b.h"
#include "rdf/vocab.h"

namespace rdfref {
namespace testing {

namespace {
namespace vocab = rdf::vocab;
using query::Atom;
using query::Cq;
using query::QTerm;
using query::VarId;
}  // namespace

namespace {

/// Builds a Scenario out of a generated sp2b graph: triples partition into
/// schema/data by predicate (SortedTriples keeps it deterministic), pools
/// by term role so GenerateQuery draws sp2b vocabulary.
Scenario GenerateSp2bScenario(uint64_t seed, const ScenarioOptions& options) {
  Scenario sc;
  Rng rng(seed);
  datagen::Sp2bConfig config;
  config.documents = static_cast<int>(
      rng.Between(options.sp2b_min_documents, options.sp2b_extra_documents));
  config.seed = rng.Next();
  datagen::Sp2b::Generate(config, &sc.graph);

  std::set<rdf::TermId> classes, properties, subjects, literals;
  const std::vector<rdf::Triple> sorted = sc.graph.SortedTriples();
  for (const rdf::Triple& t : sorted) {
    if (vocab::IsSchemaProperty(t.p)) {
      sc.schema_triples.push_back(t);
      if (t.p == vocab::kSubClassOfId) {
        classes.insert(t.s);
        classes.insert(t.o);
      } else if (t.p == vocab::kSubPropertyOfId) {
        properties.insert(t.s);
        properties.insert(t.o);
      } else {
        properties.insert(t.s);  // domain/range constrain a property...
        classes.insert(t.o);     // ...to a class
      }
    } else {
      sc.data_triples.push_back(t);
      if (t.p == vocab::kTypeId) {
        subjects.insert(t.s);
        classes.insert(t.o);
      } else {
        subjects.insert(t.s);
        properties.insert(t.p);
        if (sc.graph.dict().Lookup(t.o).is_literal()) {
          literals.insert(t.o);
        } else {
          subjects.insert(t.o);
        }
      }
    }
  }
  sc.classes.assign(classes.begin(), classes.end());
  sc.properties.assign(properties.begin(), properties.end());
  sc.subjects.assign(subjects.begin(), subjects.end());
  sc.literals.assign(literals.begin(), literals.end());
  return sc;
}

}  // namespace

Scenario GenerateScenario(uint64_t seed, const ScenarioOptions& options) {
  if (options.source == ScenarioSource::kSp2b) {
    return GenerateSp2bScenario(seed, options);
  }
  Scenario sc;
  Rng rng(seed);
  rdf::Dictionary& dict = sc.graph.dict();

  const int num_classes = static_cast<int>(
      rng.Between(options.min_classes, options.extra_classes));
  const int num_props = static_cast<int>(
      rng.Between(options.min_properties, options.extra_properties));
  const int num_subjects = static_cast<int>(
      rng.Between(options.min_subjects, options.extra_subjects));
  for (int i = 0; i < num_classes; ++i) {
    sc.classes.push_back(dict.InternUri("http://t/C" + std::to_string(i)));
  }
  for (int i = 0; i < num_props; ++i) {
    sc.properties.push_back(dict.InternUri("http://t/p" + std::to_string(i)));
  }
  for (int i = 0; i < num_subjects; ++i) {
    sc.subjects.push_back(dict.InternUri("http://t/s" + std::to_string(i)));
  }
  for (int i = 0; i < options.num_literals; ++i) {
    sc.literals.push_back(dict.InternLiteral("lit" + std::to_string(i)));
  }

  auto random_class = [&]() {
    return sc.classes[rng.Uniform(sc.classes.size())];
  };
  auto random_prop = [&]() {
    return sc.properties[rng.Uniform(sc.properties.size())];
  };
  auto add_schema = [&](rdf::TermId s, rdf::TermId p, rdf::TermId o) {
    if (sc.graph.Add(s, p, o)) sc.schema_triples.push_back(rdf::Triple(s, p, o));
  };

  // Random schema (never constraining the RDFS built-ins, per the DB
  // fragment convention — see DESIGN.md). Locals pin the draw order; the
  // old in-test generator left it to argument evaluation order.
  const int num_sc = static_cast<int>(
      rng.Between(options.min_subclass, options.extra_subclass));
  for (int i = 0; i < num_sc; ++i) {
    rdf::TermId sub = random_class(), super = random_class();
    add_schema(sub, vocab::kSubClassOfId, super);
  }
  const int num_sp = static_cast<int>(
      rng.Between(options.min_subproperty, options.extra_subproperty));
  for (int i = 0; i < num_sp; ++i) {
    rdf::TermId sub = random_prop(), super = random_prop();
    add_schema(sub, vocab::kSubPropertyOfId, super);
  }
  const int num_dom = static_cast<int>(
      rng.Between(options.min_domain, options.extra_domain));
  for (int i = 0; i < num_dom; ++i) {
    rdf::TermId p = random_prop(), c = random_class();
    add_schema(p, vocab::kDomainId, c);
  }
  const int num_rng = static_cast<int>(
      rng.Between(options.min_range, options.extra_range));
  for (int i = 0; i < num_rng; ++i) {
    rdf::TermId p = random_prop(), c = random_class();
    add_schema(p, vocab::kRangeId, c);
  }

  // Random instance triples: property assertions (some literal-valued) and
  // class assertions.
  const int num_triples = static_cast<int>(
      rng.Between(options.min_triples, options.extra_triples));
  for (int i = 0; i < num_triples; ++i) {
    rdf::TermId s = sc.subjects[rng.Uniform(sc.subjects.size())];
    rdf::Triple t;
    if (rng.Chance(options.type_assertion_rate)) {
      t = rdf::Triple(s, vocab::kTypeId, random_class());
    } else {
      rdf::TermId o =
          (!sc.literals.empty() && rng.Chance(options.literal_object_rate))
              ? sc.literals[rng.Uniform(sc.literals.size())]
              : sc.subjects[rng.Uniform(sc.subjects.size())];
      rdf::TermId p = random_prop();
      t = rdf::Triple(s, p, o);
    }
    if (sc.graph.Add(t)) sc.data_triples.push_back(t);
  }
  return sc;
}

Scenario RestrictScenario(const Scenario& base,
                          const std::vector<rdf::Triple>& schema,
                          const std::vector<rdf::Triple>& data) {
  Scenario out;
  // An id-identical dictionary but none of the triples (dense 0..size-1
  // enumeration, valid under any permutation).
  // rdfref-check: allow(termid-arith)
  for (rdf::TermId id = vocab::kNumBuiltins; id < base.graph.dict().size();
       ++id) {
    out.graph.dict().Intern(base.graph.dict().Lookup(id));
  }
  out.classes = base.classes;
  out.properties = base.properties;
  out.subjects = base.subjects;
  out.literals = base.literals;
  for (const rdf::Triple& t : schema) {
    if (out.graph.Add(t)) out.schema_triples.push_back(t);
  }
  for (const rdf::Triple& t : data) {
    if (out.graph.Add(t)) out.data_triples.push_back(t);
  }
  return out;
}

query::Cq GenerateQuery(const Scenario& sc, Rng* rng,
                        const QueryOptions& options) {
  Cq q;
  std::vector<VarId> pool;
  for (int i = 0; i < options.var_pool; ++i) {
    pool.push_back(q.AddVar("v" + std::to_string(i)));
  }
  auto var = [&]() { return QTerm::Var(pool[rng->Uniform(pool.size())]); };
  const int atoms = static_cast<int>(
      rng->Between(options.min_atoms, options.extra_atoms));
  for (int i = 0; i < atoms; ++i) {
    // Subject: variable or a subject constant.
    QTerm s = rng->Chance(options.subject_var_rate)
                  ? var()
                  : QTerm::Const(sc.subjects[rng->Uniform(sc.subjects.size())]);
    double kind = rng->UniformDouble();
    if (kind < options.type_atom_rate) {
      // Type atom; class constant or variable.
      QTerm o = rng->Chance(options.class_const_rate)
                    ? QTerm::Const(sc.classes[rng->Uniform(sc.classes.size())])
                    : var();
      q.AddAtom(Atom(s, QTerm::Const(vocab::kTypeId), o));
    } else if (kind < options.type_atom_rate + options.property_atom_rate) {
      // Property atom with a constant property.
      QTerm o = rng->Chance(options.object_var_rate)
                    ? var()
                    : QTerm::Const(
                          sc.subjects[rng->Uniform(sc.subjects.size())]);
      q.AddAtom(Atom(
          s, QTerm::Const(sc.properties[rng->Uniform(sc.properties.size())]),
          o));
    } else {
      // Variable property.
      q.AddAtom(Atom(s, var(), var()));
    }
  }
  // Head: the body variables (complete bindings make mismatches visible).
  for (VarId v : q.BodyVars()) q.AddHead(QTerm::Var(v));
  if (q.head().empty()) {
    // Fully constant query: give it a variable-free guard by making the
    // first atom's subject a variable instead.
    Cq fallback;
    VarId x = fallback.AddVar("x");
    Atom a = q.body()[0];
    a.s = QTerm::Var(x);
    fallback.AddAtom(a);
    fallback.AddHead(QTerm::Var(x));
    return fallback;
  }
  return q;
}

query::Ucq GenerateUcq(const Scenario& sc, Rng* rng, int max_extra_members,
                       const QueryOptions& options) {
  query::Ucq ucq;
  Cq first = GenerateQuery(sc, rng, options);
  const size_t arity = first.head().size();
  ucq.Add(std::move(first));
  const int extra =
      max_extra_members <= 0
          ? 0
          : static_cast<int>(rng->Uniform(max_extra_members + 1));
  for (int i = 0; i < extra; ++i) {
    // AnswerUnion requires equal head arity across members; rejection
    // sampling converges fast at these sizes (bounded for determinism).
    for (int tries = 0; tries < 16; ++tries) {
      Cq member = GenerateQuery(sc, rng, options);
      if (member.head().size() == arity) {
        ucq.Add(std::move(member));
        break;
      }
    }
  }
  return ucq;
}

}  // namespace testing
}  // namespace rdfref
