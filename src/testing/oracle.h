#ifndef RDFREF_TESTING_ORACLE_H_
#define RDFREF_TESTING_ORACLE_H_

#include <functional>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "api/query_answering.h"
#include "engine/table.h"
#include "query/cq.h"
#include "rdf/dictionary.h"
#include "rdf/term.h"
#include "testing/scenario.h"

namespace rdfref {
namespace testing {

/// \brief The outcome of one differential check: empty (found == false)
/// when every strategy agreed, otherwise the name of the relation that
/// broke and a human-readable diagnosis.
struct Divergence {
  bool found = false;
  /// Which check diverged, e.g. "oracle:REF-SCQ", "metamorphic:threads=8",
  /// "metamorphic:federation", "metamorphic:monotonicity".
  std::string relation;
  /// Diagnosis: row counts, example rows, the query text.
  std::string detail;

  static Divergence None() { return Divergence{}; }
  static Divergence Of(std::string relation, std::string detail) {
    return Divergence{true, std::move(relation), std::move(detail)};
  }
};

/// \brief A result row decoded to RDF terms — comparable across answerers
/// with different dictionaries (the federation re-encodes every endpoint's
/// values into its own shared dictionary).
using DecodedRow = std::vector<rdf::Term>;

/// \brief Decodes a table's rows against its dictionary, as a set (the
/// paper's queries are set-semantics).
std::set<DecodedRow> DecodeRows(const engine::Table& table,
                                const rdf::Dictionary& dict);

/// \brief Re-expresses a query's constants against another dictionary.
/// Every check that hands a scenario-id query to a QueryAnswerer must
/// translate at that boundary: the answerer hierarchy-encodes (permutes)
/// its dictionary at construction, so scenario TermIds are stale inside it.
query::Cq TranslateQuery(const query::Cq& q, const rdf::Dictionary& from,
                         rdf::Dictionary* to);

/// \brief Same boundary translation for a triple built from scenario ids
/// (update checks insert scenario-pool facts into a remapped answerer).
rdf::Triple TranslateTriple(const rdf::Triple& t, const rdf::Dictionary& from,
                            rdf::Dictionary* to);

/// \brief Renders a small sample of a decoded row set for diagnostics.
std::string RowSetPreview(const std::set<DecodedRow>& rows,
                          size_t max_rows = 4);

/// \brief The differential oracle protocol over one scenario:
///
///   1. Sat (saturate G, evaluate q directly) is ground truth: q(G∞).
///   2. Every complete strategy — Ref-UCQ, Ref-SCQ, Ref-GCov, Dat, and
///      Ref-UCQ with minimization — must match it bit-for-bit.
///   3. The incomplete (Virtuoso-style) Ref must return a subset.
///
/// The mutate hook corrupts a chosen strategy's answer before comparison;
/// it exists so the harness can verify *itself* (an injected evaluator bug
/// must be caught and shrunk — the mutation check of the fuzz driver).
/// \brief Hook that corrupts a strategy's answer before comparison (see
/// Oracle). Namespace-scope so it can default-initialize in signatures.
using AnswerMutator = std::function<void(api::Strategy, engine::Table*)>;

/// \brief Oracle knobs (namespace-scope so `= {}` defaults work inside the
/// class definition).
struct OracleOptions {
  bool check_minimized = true;
  bool check_incomplete_subset = true;
  AnswerMutator mutate;
};

class Oracle {
 public:
  using AnswerMutator = testing::AnswerMutator;
  using Options = OracleOptions;

  /// \brief Builds a private QueryAnswerer over a clone of the scenario's
  /// graph (the scenario stays reusable and must outlive the oracle: its
  /// dictionary is the id space Check's queries arrive in).
  explicit Oracle(const Scenario& sc, Options options = {});

  /// \brief Runs the full protocol for one query (given in scenario ids;
  /// translated into the answerer's encoded id space at the boundary).
  Divergence Check(const query::Cq& q);

  api::QueryAnswerer& answerer() { return *answerer_; }

 private:
  Result<engine::Table> Answer(const query::Cq& q, api::Strategy s,
                               const api::AnswerOptions& options = {});

  Options options_;
  const rdf::Dictionary* scenario_dict_;
  std::unique_ptr<api::QueryAnswerer> answerer_;
};

}  // namespace testing
}  // namespace rdfref

#endif  // RDFREF_TESTING_ORACLE_H_
