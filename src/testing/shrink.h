#ifndef RDFREF_TESTING_SHRINK_H_
#define RDFREF_TESTING_SHRINK_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "query/cq.h"
#include "rdf/triple.h"
#include "testing/scenario.h"

namespace rdfref {
namespace testing {

/// \brief Re-runs the failing check on a candidate (scenario, query) pair;
/// returns true while the failure still reproduces. The predicate must be
/// deterministic — the shrinker trusts a single evaluation per candidate.
using FailurePredicate =
    std::function<bool(const Scenario& sc, const query::Cq& q)>;

/// \brief A minimized failing case plus its replay artifacts.
struct ShrinkResult {
  std::vector<rdf::Triple> schema_triples;
  std::vector<rdf::Triple> data_triples;
  query::Cq query;
  /// Fixpoint rounds and candidate evaluations the greedy pass used.
  int rounds = 0;
  int evaluations = 0;
  size_t triples() const {
    return schema_triples.size() + data_triples.size();
  }
};

/// \brief Greedy delta-debugging: repeatedly try dropping each data triple,
/// each schema triple, and each query atom (rebuilding the head from the
/// remaining body variables), keeping any removal after which `fails` still
/// holds, until a fixpoint. The result is 1-minimal: removing any single
/// remaining element makes the failure vanish.
ShrinkResult Shrink(const Scenario& sc, const query::Cq& q,
                    const FailurePredicate& fails);

/// \brief Renders the shrunken case as a self-contained gtest snippet
/// (compilable against the repo's public headers) that rebuilds the graph,
/// the query, and asserts all complete strategies agree.
std::string EmitReproTest(const Scenario& base, const ShrinkResult& shrunk,
                          const std::string& test_name,
                          const std::string& relation);

/// \brief Renders a replayable seed file: key/value lines the fuzz driver
/// parses back with ParseSeedFile to re-run the exact original case.
std::string EmitSeedFile(uint64_t seed, int trial,
                         const std::string& relation);

/// \brief Parsed seed file contents.
struct SeedFileEntry {
  uint64_t seed = 0;
  int trial = -1;  ///< -1 = run all trials of the seed
  std::string relation;
};

/// \brief Parses EmitSeedFile output; false on malformed input.
bool ParseSeedFile(const std::string& contents, SeedFileEntry* out);

}  // namespace testing
}  // namespace rdfref

#endif  // RDFREF_TESTING_SHRINK_H_
