#ifndef RDFREF_TESTING_ENCODING_ORACLE_H_
#define RDFREF_TESTING_ENCODING_ORACLE_H_

#include "query/cq.h"
#include "testing/oracle.h"
#include "testing/scenario.h"

namespace rdfref {
namespace testing {

/// \brief The hierarchy-encoding differential oracle: over one scenario and
/// query, the encoded reformulation (interval atoms over the id-range
/// dictionary) must produce exactly the answer set of the classic UCQ
/// reformulation (use_encoding = false) — and both must match saturation
/// ground truth. Covers the Ref-UCQ and Ref-SCQ paths plus a post-update
/// re-check, since intervals must stay *sound* while newly inserted schema
/// edges fall back to classic members.
Divergence CheckEncodedEquivalence(const Scenario& sc,
                                   const query::Cq& scenario_q);

}  // namespace testing
}  // namespace rdfref

#endif  // RDFREF_TESTING_ENCODING_ORACLE_H_
