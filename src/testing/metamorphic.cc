#include "testing/metamorphic.h"

#include <algorithm>
#include <memory>
#include <sstream>
#include <string>
#include <utility>

#include "federation/federation.h"
#include "rdf/vocab.h"

namespace rdfref {
namespace testing {

namespace {

namespace vocab = rdf::vocab;

std::string Diagnose(const query::Cq& q, const rdf::Dictionary& dict,
                     const std::set<DecodedRow>& expected,
                     const std::set<DecodedRow>& got) {
  std::ostringstream os;
  os << "expected " << RowSetPreview(expected) << "; got "
     << RowSetPreview(got) << "\nquery: " << q.ToString(dict);
  return os.str();
}

}  // namespace

Divergence CheckThreadInvariance(const Scenario& sc,
                                 const query::Cq& scenario_q,
                                 const std::vector<int>& thread_settings) {
  api::QueryAnswerer answerer(sc.graph.Clone());
  const query::Cq q =
      TranslateQuery(scenario_q, sc.graph.dict(), &answerer.dict());
  const api::Strategy strategies[] = {api::Strategy::kRefUcq,
                                      api::Strategy::kRefGcov};
  for (api::Strategy s : strategies) {
    bool first = true;
    std::set<DecodedRow> reference;
    for (int threads : thread_settings) {
      api::AnswerOptions options;
      options.threads = threads;
      auto got = answerer.Answer(q, s, nullptr, options);
      std::ostringstream name;
      name << "metamorphic:threads=" << threads << ":"
           << api::StrategyName(s);
      if (!got.ok()) return Divergence::Of(name.str(), got.status().ToString());
      std::set<DecodedRow> rows = DecodeRows(*got, answerer.dict());
      if (first) {
        reference = std::move(rows);
        first = false;
      } else if (rows != reference) {
        return Divergence::Of(
            name.str(), Diagnose(q, answerer.dict(), reference, rows));
      }
    }
  }
  return Divergence::None();
}

Divergence CheckDeadlineInvariance(const Scenario& sc,
                                   const query::Cq& scenario_q) {
  api::QueryAnswerer answerer(sc.graph.Clone());
  const query::Cq q =
      TranslateQuery(scenario_q, sc.graph.dict(), &answerer.dict());
  auto baseline = answerer.Answer(q, api::Strategy::kRefUcq);
  if (!baseline.ok()) {
    return Divergence::Of("metamorphic:deadline",
                          baseline.status().ToString());
  }
  const std::set<DecodedRow> expected =
      DecodeRows(*baseline, answerer.dict());

  // An explicit infinite deadline and a generous finite one both take the
  // deadline-polling code paths; neither may change the answer.
  const Deadline deadlines[] = {Deadline::Infinite(),
                                Deadline::AfterMillis(1e8)};
  for (const Deadline& d : deadlines) {
    api::AnswerOptions options;
    options.deadline = d;
    auto got = answerer.Answer(q, api::Strategy::kRefUcq, nullptr, options);
    if (!got.ok()) {
      return Divergence::Of("metamorphic:deadline",
                            got.status().ToString());
    }
    std::set<DecodedRow> rows = DecodeRows(*got, answerer.dict());
    if (rows != expected) {
      return Divergence::Of("metamorphic:deadline",
                            Diagnose(q, answerer.dict(), expected, rows));
    }
  }
  return Divergence::None();
}

Divergence CheckFederationPartition(const Scenario& sc, const query::Cq& q,
                                    int num_endpoints, uint64_t seed) {
  // Centralized ground truth (query translated into the answerer's
  // hierarchy-encoded id space; the comparison below is over decoded terms,
  // so the two id spaces never meet).
  api::QueryAnswerer central(sc.graph.Clone());
  query::Cq central_q = TranslateQuery(q, sc.graph.dict(), &central.dict());
  auto expected_table = central.Answer(central_q, api::Strategy::kSaturation);
  if (!expected_table.ok()) {
    return Divergence::Of("metamorphic:federation",
                          expected_table.status().ToString());
  }
  const std::set<DecodedRow> expected =
      DecodeRows(*expected_table, central.dict());

  // Random partition of schema AND data triples: cross-endpoint
  // consequences (fact on one endpoint, constraint on another) are the
  // interesting case, and a random split produces plenty of them.
  Rng rng(seed);
  std::vector<rdf::Graph> parts;
  for (int i = 0; i < num_endpoints; ++i) parts.emplace_back();
  auto assign = [&](const rdf::Triple& t) {
    rdf::Graph& g = parts[rng.Uniform(parts.size())];
    const rdf::Dictionary& dict = sc.graph.dict();
    g.Add(dict.Lookup(t.s), dict.Lookup(t.p), dict.Lookup(t.o));
  };
  for (const rdf::Triple& t : sc.schema_triples) assign(t);
  for (const rdf::Triple& t : sc.data_triples) assign(t);

  federation::Federation fed;
  for (int i = 0; i < num_endpoints; ++i) {
    fed.AddEndpoint("ep" + std::to_string(i), parts[i]);
  }
  query::Cq fed_q = TranslateQuery(q, sc.graph.dict(), &fed.dict());
  auto got = fed.Answer(fed_q);
  if (!got.ok()) {
    return Divergence::Of("metamorphic:federation",
                          got.status().ToString());
  }
  std::set<DecodedRow> rows = DecodeRows(*got, fed.dict());
  if (rows != expected) {
    return Divergence::Of("metamorphic:federation",
                          Diagnose(q, sc.graph.dict(), expected, rows));
  }
  return Divergence::None();
}

Divergence CheckInsertionMonotonicity(const Scenario& sc,
                                      const query::Cq& scenario_q, Rng* rng,
                                      int num_inserts) {
  api::QueryAnswerer answerer(sc.graph.Clone());
  const query::Cq q =
      TranslateQuery(scenario_q, sc.graph.dict(), &answerer.dict());
  auto before = answerer.Answer(q, api::Strategy::kSaturation);
  if (!before.ok()) {
    return Divergence::Of("metamorphic:monotonicity",
                          before.status().ToString());
  }
  std::set<DecodedRow> previous = DecodeRows(*before, answerer.dict());

  for (int i = 0; i < num_inserts; ++i) {
    // A fresh instance fact over the scenario's vocabulary.
    rdf::TermId s = sc.subjects[rng->Uniform(sc.subjects.size())];
    rdf::Triple t =
        rng->Chance(0.3)
            ? rdf::Triple(s, vocab::kTypeId,
                          sc.classes[rng->Uniform(sc.classes.size())])
            : rdf::Triple(s, sc.properties[rng->Uniform(sc.properties.size())],
                          sc.subjects[rng->Uniform(sc.subjects.size())]);
    Status st = answerer.InsertTriple(
        TranslateTriple(t, sc.graph.dict(), &answerer.dict()));
    if (!st.ok()) {
      return Divergence::Of("metamorphic:monotonicity",
                            "insert failed: " + st.ToString());
    }

    auto sat = answerer.Answer(q, api::Strategy::kSaturation);
    if (!sat.ok()) {
      return Divergence::Of("metamorphic:monotonicity",
                            sat.status().ToString());
    }
    std::set<DecodedRow> now = DecodeRows(*sat, answerer.dict());
    if (!std::includes(now.begin(), now.end(), previous.begin(),
                       previous.end())) {
      return Divergence::Of(
          "metamorphic:monotonicity",
          "insertion lost answers: " +
              Diagnose(q, answerer.dict(), previous, now));
    }
    // The complete strategies keep agreeing on the grown graph.
    for (api::Strategy s2 :
         {api::Strategy::kRefUcq, api::Strategy::kDatalog}) {
      auto got = answerer.Answer(q, s2);
      if (!got.ok()) {
        return Divergence::Of("metamorphic:monotonicity",
                              got.status().ToString());
      }
      std::set<DecodedRow> rows = DecodeRows(*got, answerer.dict());
      if (rows != now) {
        return Divergence::Of(
            std::string("metamorphic:monotonicity:") + api::StrategyName(s2),
            Diagnose(q, answerer.dict(), now, rows));
      }
    }
    previous = std::move(now);
  }
  return Divergence::None();
}

Divergence CheckUpdateConsistency(const Scenario& sc,
                                  const query::Cq& scenario_q, Rng* rng,
                                  int num_ops) {
  api::QueryAnswerer answerer(sc.graph.Clone());
  const query::Cq q =
      TranslateQuery(scenario_q, sc.graph.dict(), &answerer.dict());
  // Saturate now so every later update exercises the *incremental* paths
  // (forward chase on insert, DRed on delete) rather than a lazy rebuild.
  auto warm = answerer.Answer(q, api::Strategy::kSaturation);
  if (!warm.ok()) {
    return Divergence::Of("metamorphic:updates", warm.status().ToString());
  }

  std::vector<rdf::Triple> facts = sc.data_triples;
  for (int op = 0; op < num_ops; ++op) {
    const bool remove = !facts.empty() && rng->Chance(0.5);
    if (remove) {
      size_t at = rng->Uniform(facts.size());
      rdf::Triple t = facts[at];
      facts.erase(facts.begin() + at);
      Status st = answerer.RemoveTriple(
          TranslateTriple(t, sc.graph.dict(), &answerer.dict()));
      if (!st.ok()) {
        return Divergence::Of("metamorphic:updates",
                              "remove failed: " + st.ToString());
      }
    } else {
      rdf::TermId s = sc.subjects[rng->Uniform(sc.subjects.size())];
      rdf::Triple t =
          rng->Chance(0.3)
              ? rdf::Triple(s, vocab::kTypeId,
                            sc.classes[rng->Uniform(sc.classes.size())])
              : rdf::Triple(
                    s, sc.properties[rng->Uniform(sc.properties.size())],
                    sc.subjects[rng->Uniform(sc.subjects.size())]);
      if (std::find(facts.begin(), facts.end(), t) == facts.end()) {
        facts.push_back(t);
      }
      Status st = answerer.InsertTriple(
          TranslateTriple(t, sc.graph.dict(), &answerer.dict()));
      if (!st.ok()) {
        return Divergence::Of("metamorphic:updates",
                              "insert failed: " + st.ToString());
      }
    }

    // Ground truth: a from-scratch answerer over the current explicit set.
    // `facts` is kept in scenario ids; the fresh answerer re-encodes its own
    // clone, so the query is translated into *its* id space independently.
    Scenario current = RestrictScenario(sc, sc.schema_triples, facts);
    api::QueryAnswerer fresh(current.graph.Clone());
    query::Cq fresh_q =
        TranslateQuery(scenario_q, sc.graph.dict(), &fresh.dict());
    auto expected_table = fresh.Answer(fresh_q, api::Strategy::kSaturation);
    if (!expected_table.ok()) {
      return Divergence::Of("metamorphic:updates",
                            expected_table.status().ToString());
    }
    std::set<DecodedRow> expected =
        DecodeRows(*expected_table, fresh.dict());

    for (api::Strategy s : {api::Strategy::kSaturation,
                            api::Strategy::kRefUcq, api::Strategy::kDatalog}) {
      auto got = answerer.Answer(q, s);
      std::string name = std::string("metamorphic:updates:op") +
                         std::to_string(op) + ":" + api::StrategyName(s);
      if (!got.ok()) return Divergence::Of(name, got.status().ToString());
      std::set<DecodedRow> rows = DecodeRows(*got, answerer.dict());
      if (rows != expected) {
        return Divergence::Of(name,
                              Diagnose(q, answerer.dict(), expected, rows));
      }
    }
  }
  return Divergence::None();
}

}  // namespace testing
}  // namespace rdfref
