#ifndef RDFREF_TESTING_METAMORPHIC_H_
#define RDFREF_TESTING_METAMORPHIC_H_

#include <cstdint>
#include <vector>

#include "common/hash.h"
#include "query/cq.h"
#include "testing/oracle.h"
#include "testing/scenario.h"

namespace rdfref {
namespace testing {

/// Metamorphic relations: transformations of an answering call whose result
/// is *known* to be invariant (or monotone), checked differentially. They
/// cross-check the subsystems the plain oracle never exercises — the
/// parallel evaluator, the deadline plumbing, the federation mediator, and
/// incremental (chase / DRed) maintenance.

/// \brief Answers must be bit-identical for every AnswerOptions::threads
/// setting (e.g. {1, 0, 8}) under both Ref-UCQ and Ref-GCov.
Divergence CheckThreadInvariance(const Scenario& sc, const query::Cq& q,
                                 const std::vector<int>& thread_settings);

/// \brief An explicit infinite deadline (and a generous finite one) must
/// not change answers — the in-scan cancellation polling is transparent.
Divergence CheckDeadlineInvariance(const Scenario& sc, const query::Cq& q);

/// \brief Partitioning the scenario's triples across `num_endpoints`
/// fault-free federation endpoints and answering through the mediator must
/// equal the centralized ground truth: implicit facts whose fact and
/// constraint land on *different* endpoints are exactly what reformulation
/// recovers. `seed` drives the random partition.
Divergence CheckFederationPartition(const Scenario& sc, const query::Cq& q,
                                    int num_endpoints, uint64_t seed);

/// \brief Inserting random instance triples grows answers monotonically
/// (certain answers are preserved under graph growth), and all complete
/// strategies still agree after every insertion.
Divergence CheckInsertionMonotonicity(const Scenario& sc, const query::Cq& q,
                                      Rng* rng, int num_inserts);

/// \brief Random insert/delete sequence through the facade: after every
/// update, the incrementally maintained saturation (forward chase on
/// insert, DRed on delete) and every Ref strategy must equal a
/// from-scratch QueryAnswerer over the current explicit triples.
Divergence CheckUpdateConsistency(const Scenario& sc, const query::Cq& q,
                                  Rng* rng, int num_ops);

}  // namespace testing
}  // namespace rdfref

#endif  // RDFREF_TESTING_METAMORPHIC_H_
