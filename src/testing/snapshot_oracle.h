#ifndef RDFREF_TESTING_SNAPSHOT_ORACLE_H_
#define RDFREF_TESTING_SNAPSHOT_ORACLE_H_

#include <cstdint>

#include "query/cq.h"
#include "testing/oracle.h"
#include "testing/scenario.h"

namespace rdfref {
namespace testing {

/// \brief Knobs of the concurrent-snapshot metamorphic check.
struct ConcurrentSnapshotOptions {
  /// Reader threads pinning and evaluating snapshots.
  int reader_threads = 2;
  /// Insert/remove operations the churning writer performs.
  int writer_ops = 96;
  /// The writer calls Freeze() every this many operations...
  int freeze_every = 12;
  /// ...and Compact() every `compact_every` freezes.
  int compact_every = 3;
  /// Snapshot pin+evaluate rounds per reader.
  int checks_per_reader = 6;
};

/// \brief Deterministic (single-threaded) snapshot-isolation relation: over
/// a VersionSet seeded with the scenario's explicit database, applies
/// `num_ops` random operations — inserts, removes, Freeze(), Compact() —
/// and after every operation demands that
///
///   1. evaluating q's UCQ reformulation against a freshly pinned snapshot
///      is bit-identical to from-scratch evaluation over a Store built from
///      that snapshot's materialized triple set
///      (relation "snapshot:epoch=E"), and
///   2. a snapshot pinned at epoch 0 keeps answering exactly its original
///      table no matter how the store churns, freezes, or compacts
///      underneath it (relation "snapshot:pinned").
///
/// Runs in the default fuzz battery; divergences shrink like any other
/// relation because every draw comes from the caller's seeded `rng`.
Divergence CheckSnapshotIsolation(const Scenario& sc, const query::Cq& q,
                                  Rng* rng, int num_ops);

/// \brief Threaded snapshot-isolation relation (fuzz_driver
/// --updates-concurrent): one writer thread churns a VersionSet (with
/// background compaction running) while reader threads repeatedly pin
/// snapshots and demand bit-identical agreement between pinned-epoch
/// evaluation and from-scratch evaluation over the snapshot's materialized
/// set, plus re-evaluation determinism on the same snapshot. Relations are
/// prefixed "concurrent:"; failures are timing-dependent, so the harness
/// skips shrinking for them. Run under TSan in CI, the check also proves
/// the version-swap protocol race-free.
Divergence CheckConcurrentSnapshots(const Scenario& sc, const query::Cq& q,
                                    uint64_t seed,
                                    const ConcurrentSnapshotOptions& options);

}  // namespace testing
}  // namespace rdfref

#endif  // RDFREF_TESTING_SNAPSHOT_ORACLE_H_
