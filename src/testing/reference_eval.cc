#include "testing/reference_eval.h"

#include <algorithm>
#include <cstdint>
#include <functional>
#include <limits>
#include <set>
#include <sstream>
#include <unordered_set>
#include <vector>

#include "api/query_answering.h"
#include "engine/evaluator.h"
#include "reformulation/reformulator.h"
#include "storage/version_set.h"

namespace rdfref {
namespace testing {

namespace {

using query::Atom;
using query::Cq;
using query::QTerm;
using query::VarId;

constexpr rdf::TermId kUnbound = rdf::kInvalidTermId;

rdf::TermId Resolve(const QTerm& t, const std::vector<rdf::TermId>& bindings) {
  if (!t.is_var) return t.term();
  rdf::TermId v = bindings[t.var()];
  return v == kUnbound ? storage::kAny : v;
}

// The seed engine's greedy join order, kept with its original O(n²)
// std::set bookkeeping: the reference must agree with the engine's order
// (the counts are the same store answers), not share its code.
std::vector<int> ReferenceOrderAtoms(const storage::TripleSource& store,
                                     const Cq& q) {
  const std::vector<Atom>& body = q.body();
  const int n = static_cast<int>(body.size());
  std::vector<uint64_t> base(n);
  for (int i = 0; i < n; ++i) {
    rdf::TermId s = body[i].s.is_var ? storage::kAny : body[i].s.term();
    rdf::TermId p = body[i].p.is_var ? storage::kAny : body[i].p.term();
    rdf::TermId o = body[i].o.is_var ? storage::kAny : body[i].o.term();
    base[i] = body[i].has_range()
                  ? store.CountIntervalMatches(s, p, o, body[i].range_pos,
                                               body[i].range_hi)
                  : store.CountMatches(s, p, o);
  }
  std::vector<int> order;
  std::vector<bool> used(n, false);
  std::set<VarId> bound_vars;
  for (int step = 0; step < n; ++step) {
    int best = -1;
    uint64_t best_count = std::numeric_limits<uint64_t>::max();
    bool best_connected = false;
    for (int i = 0; i < n; ++i) {
      if (used[i]) continue;
      std::set<VarId> vars = Cq::AtomVars(body[i]);
      bool connected =
          step == 0 || std::any_of(vars.begin(), vars.end(), [&](VarId v) {
            return bound_vars.count(v) > 0;
          });
      if (best == -1 || (connected && !best_connected) ||
          (connected == best_connected && base[i] < best_count)) {
        best = i;
        best_count = base[i];
        best_connected = connected;
      }
    }
    used[best] = true;
    order.push_back(best);
    std::set<VarId> vars = Cq::AtomVars(body[best]);
    bound_vars.insert(vars.begin(), vars.end());
  }
  return order;
}

// The seed engine's recursive nested-loop join: one materialized row
// vector per emitted head tuple.
void ReferenceEvaluateCqInto(const storage::TripleSource& store, const Cq& q,
                             std::vector<std::vector<rdf::TermId>>* out) {
  const std::vector<Atom>& body = q.body();
  if (body.empty()) return;
  std::vector<int> order = ReferenceOrderAtoms(store, q);
  std::vector<rdf::TermId> bindings(q.num_vars(), kUnbound);
  std::vector<char> resource_only(q.num_vars(), 0);
  for (VarId v : q.resource_vars()) resource_only[v] = 1;
  const rdf::Dictionary& dict = store.dict();

  auto emit = [&]() {
    std::vector<rdf::TermId> row;
    row.reserve(q.head().size());
    for (const QTerm& h : q.head()) {
      row.push_back(h.is_var ? bindings[h.var()] : h.term());
    }
    out->push_back(std::move(row));
  };

  std::function<void(size_t)> recurse = [&](size_t depth) {
    if (depth == order.size()) {
      emit();
      return;
    }
    const Atom& atom = body[order[depth]];
    rdf::TermId ps = Resolve(atom.s, bindings);
    rdf::TermId pp = Resolve(atom.p, bindings);
    rdf::TermId po = Resolve(atom.o, bindings);
    auto per_triple = [&](const rdf::Triple& t) {
      VarId newly[3];
      int num_new = 0;
      auto bind = [&](const QTerm& qt, rdf::TermId value) -> bool {
        if (!qt.is_var) return true;
        rdf::TermId& slot = bindings[qt.var()];
        if (slot == kUnbound) {
          if (resource_only[qt.var()] && dict.Lookup(value).is_literal()) {
            return false;
          }
          slot = value;
          newly[num_new++] = qt.var();
          return true;
        }
        return slot == value;
      };
      bool ok = bind(atom.s, t.s) && bind(atom.p, t.p) && bind(atom.o, t.o);
      if (ok) recurse(depth + 1);
      for (int k = 0; k < num_new; ++k) bindings[newly[k]] = kUnbound;
    };
    if (atom.has_range()) {
      // Interval atom: iterate exactly what the engine's interval access
      // path delivers (same order — the bit-for-bit comparison depends on
      // the enumeration order, not just the set).
      storage::PatternCursor cursor;
      for (const rdf::Triple& t : cursor.ResetInterval(
               store, ps, pp, po, atom.range_pos, atom.range_hi)) {
        per_triple(t);
      }
    } else {
      store.Scan(ps, pp, po, per_triple);
    }
  };
  recurse(0);
}

// Seed-order dedup: keep the first occurrence of each row, in order.
void ReferenceDedup(std::vector<std::vector<rdf::TermId>>* rows) {
  std::unordered_set<std::vector<rdf::TermId>, engine::RowHash> seen;
  std::vector<std::vector<rdf::TermId>> kept;
  kept.reserve(rows->size());
  for (std::vector<rdf::TermId>& row : *rows) {
    if (seen.insert(row).second) kept.push_back(std::move(row));
  }
  *rows = std::move(kept);
}

engine::Table ToTable(std::vector<query::VarId> columns,
                      const std::vector<std::vector<rdf::TermId>>& rows,
                      size_t arity) {
  engine::Table t;
  t.columns = std::move(columns);
  t.SetArity(arity);
  for (const std::vector<rdf::TermId>& row : rows) t.AppendRow(row);
  return t;
}

std::vector<query::VarId> HeadColumns(const Cq& q) {
  std::vector<query::VarId> columns;
  columns.reserve(q.head().size());
  for (const QTerm& h : q.head()) {
    columns.push_back(h.is_var ? h.var() : engine::kConstColumn);
  }
  return columns;
}

}  // namespace

Divergence CompareBitForBit(const std::string& relation,
                            const engine::Table& columnar,
                            const engine::Table& reference, const Cq& q,
                            const rdf::Dictionary& dict) {
  std::ostringstream os;
  if (columnar.columns != reference.columns) {
    os << "column labels differ: columnar has " << columnar.columns.size()
       << ", reference has " << reference.columns.size();
  } else if (columnar.NumRows() != reference.NumRows()) {
    os << "row counts differ: columnar " << columnar.NumRows()
       << ", reference " << reference.NumRows();
  } else {
    for (size_t r = 0; r < reference.NumRows(); ++r) {
      const auto a = columnar.row(r);
      const auto b = reference.row(r);
      if (!std::equal(a.begin(), a.end(), b.begin(), b.end())) {
        os << "row " << r << " differs";
        break;
      }
    }
  }
  std::string diff = os.str();
  if (diff.empty()) return Divergence::None();
  os << "\nquery: " << q.ToString(dict);
  return Divergence::Of(relation, os.str());
}

engine::Table ReferenceEvaluateCq(const storage::TripleSource& source,
                                  const query::Cq& q) {
  std::vector<std::vector<rdf::TermId>> rows;
  ReferenceEvaluateCqInto(source, q, &rows);
  ReferenceDedup(&rows);
  return ToTable(HeadColumns(q), rows, q.head().size());
}

engine::Table ReferenceEvaluateUcq(const storage::TripleSource& source,
                                   const query::Ucq& ucq) {
  std::vector<std::vector<rdf::TermId>> rows;
  for (const Cq& member : ucq.members()) {
    ReferenceEvaluateCqInto(source, member, &rows);
  }
  ReferenceDedup(&rows);
  if (ucq.empty()) return engine::Table();
  return ToTable(HeadColumns(ucq.members()[0]), rows,
                 ucq.members()[0].head().size());
}

Divergence CheckColumnarVsReference(const Scenario& sc,
                                    const query::Cq& scenario_q) {
  api::QueryAnswerer answerer(sc.graph.Clone());
  const query::Cq q =
      TranslateQuery(scenario_q, sc.graph.dict(), &answerer.dict());
  storage::SnapshotPtr pinned = answerer.PinSnapshot();
  const storage::TripleSource& source = *pinned;
  const rdf::Dictionary& dict = answerer.dict();
  engine::Evaluator sequential(&source);

  // 1. Plain CQ over the explicit database.
  {
    engine::Table fast = sequential.EvaluateCq(q);
    engine::Table ref = ReferenceEvaluateCq(source, q);
    Divergence d = CompareBitForBit("columnar:cq", fast, ref, q, dict);
    if (d.found) return d;
  }

  // 2. The full UCQ reformulation — the path the scan memo accelerates.
  reformulation::Reformulator reformulator(&answerer.schema(), {}, &dict);
  auto ucq = reformulator.Reformulate(q);
  if (!ucq.ok()) return Divergence::None();  // reformulation budget blown
  engine::Table ref = ReferenceEvaluateUcq(source, *ucq);
  {
    engine::Table fast = sequential.EvaluateUcq(*ucq);
    Divergence d = CompareBitForBit("columnar:ucq", fast, ref, q, dict);
    if (d.found) return d;
  }

  // 3. The parallel chunk path shares the same cache and must still be
  // bit-identical (chunk concatenation reproduces the sequential order).
  {
    engine::Evaluator parallel(&source, 8);
    engine::Table fast = parallel.EvaluateUcq(*ucq);
    Divergence d =
        CompareBitForBit("columnar:ucq-parallel", fast, ref, q, dict);
    if (d.found) return d;
  }
  return Divergence::None();
}

}  // namespace testing
}  // namespace rdfref
