#ifndef RDFREF_TESTING_SCHEMA_CHECK_H_
#define RDFREF_TESTING_SCHEMA_CHECK_H_

#include <string>
#include <vector>

#include "rdf/graph.h"

namespace rdfref {
namespace testing {

/// \brief Options of the graph/schema consistency checker.
struct SchemaCheckOptions {
  /// Tolerate properties that never appear in an RDFS constraint as long
  /// as every object they take is a literal ("attribute" properties; the
  /// paper's Figure 2 bibliography graph uses these for titles and dates).
  bool allow_undeclared_literal_properties = false;
};

/// \brief Invariants every synthetic data generator must uphold, checked
/// over a generated graph (schema triples live in the same graph, per the
/// DB fragment):
///
///   1. Every property used by a data triple appears in the RDFS schema —
///      in a subPropertyOf constraint (either side) or with a domain/range.
///   2. Every class C asserted via `s rdf:type C` appears in the schema —
///      in a subClassOf constraint (either side) or as a domain/range
///      target class.
///   3. A property with a declared range never takes a literal object (a
///      literal cannot acquire a class type).
///   4. Schema constraint triples relate URIs only — no literal or blank
///      subject/object, and RDFS built-ins are never themselves constrained.
///   5. Subjects are never literals.
///
/// Returns every violation as a human-readable line (empty = consistent).
std::vector<std::string> CheckSchemaConsistency(
    const rdf::Graph& graph, const SchemaCheckOptions& options = {});

}  // namespace testing
}  // namespace rdfref

#endif  // RDFREF_TESTING_SCHEMA_CHECK_H_
