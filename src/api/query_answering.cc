#include "api/query_answering.h"

#include <utility>
#include <vector>

#include "common/timer.h"

namespace rdfref {
namespace api {

const char* StrategyName(Strategy s) {
  switch (s) {
    case Strategy::kSaturation:
      return "SAT";
    case Strategy::kRefUcq:
      return "REF-UCQ";
    case Strategy::kRefScq:
      return "REF-SCQ";
    case Strategy::kRefJucq:
      return "REF-JUCQ";
    case Strategy::kRefGcov:
      return "REF-GCOV";
    case Strategy::kRefIncomplete:
      return "REF-INCOMPLETE";
    case Strategy::kDatalog:
      return "DATALOG";
  }
  return "UNKNOWN";
}

QueryAnswerer::QueryAnswerer(rdf::Graph graph,
                             const schema::EncoderOptions& encoder_options)
    : graph_(std::move(graph)) {
  // Hierarchy-encode the id space first (while the graph holds only the
  // *direct* constraint edges): subtrees become contiguous id intervals,
  // which the reformulator fuses into single range-scan atoms.
  encoding_report_ =
      schema::EncodeGraphHierarchy(&graph_, encoder_options).report;
  schema_ = schema::Schema::FromGraph(graph_);
  schema_.Saturate();
  // Per [9], the (small) schema component of the database is stored
  // saturated: reformulated queries may then mention any entailed
  // constraint, and schema-level queries are answerable directly.
  schema_.EmitTriples(&graph_);
  ref_store_ = std::make_unique<storage::Store>(graph_);
  versions_ = std::make_unique<storage::VersionSet>(ref_store_.get());
}

Status QueryAnswerer::InsertSchemaTriple(const rdf::Triple& t) {
  switch (t.p) {
    case rdf::vocab::kSubClassOfId:
      schema_.AddSubClass(t.s, t.o);
      break;
    case rdf::vocab::kSubPropertyOfId:
      schema_.AddSubProperty(t.s, t.o);
      break;
    case rdf::vocab::kDomainId:
      schema_.AddDomain(t.s, t.o);
      break;
    case rdf::vocab::kRangeId:
      schema_.AddRange(t.s, t.o);
      break;
    default:
      return Status::InvalidArgument("not a constraint property");
  }
  // Closing the *extended* schema over the already-closed one is exact:
  // transitive closure is monotone and idempotent.
  schema_.Saturate();
  // Store the inserted constraint and everything it newly entails. The
  // hierarchy encoding is deliberately left alone: schema growth only adds
  // sub-edges, so every existing interval stays sound, and the new edges
  // escape to classic reformulation members until Reencode().
  rdf::Graph closed;  // id-carrier only; ids are against graph_.dict()
  schema_.EmitTriples(&closed);
  graph_.Add(t);
  versions_->Insert(t);
  for (const rdf::Triple& st : closed.triples()) {
    graph_.Add(st);
    versions_->Insert(st);  // no-op for constraints already stored
  }
  if (graph_saturated_) {
    // graph_ holds G∞ under the old schema; re-closing under the extended
    // schema derives exactly the new consequences (saturation is monotone).
    reasoner::Saturator saturator(&schema_);
    saturation_added_ += saturator.Saturate(&graph_);
    sat_snapshot_dirty_ = true;
  }
  dat_.reset();
  dat_snapshot_.reset();
  return Status::OK();
}

Status QueryAnswerer::InsertTriple(const rdf::Triple& t) {
  if (!graph_.dict().Contains(t.s) || !graph_.dict().Contains(t.p) ||
      !graph_.dict().Contains(t.o)) {
    return Status::InvalidArgument("triple references unknown term ids");
  }
  if (rdf::vocab::IsSchemaProperty(t.p)) {
    return InsertSchemaTriple(t);
  }
  versions_->Insert(t);
  if (graph_saturated_) {
    reasoner::Saturator saturator(&schema_);
    if (saturator.Insert(&graph_, t) > 0) sat_snapshot_dirty_ = true;
  } else {
    graph_.Add(t);
  }
  dat_.reset();  // the Datalog program re-reads the explicit source lazily
  dat_snapshot_.reset();
  return Status::OK();
}

Status QueryAnswerer::RemoveTriple(const rdf::Triple& t) {
  if (rdf::vocab::IsSchemaProperty(t.p)) {
    return Status::Unimplemented(
        "constraint updates change the schema; rebuild the QueryAnswerer");
  }
  if (!versions_->Contains(t)) {
    return Status::NotFound("triple is not in the explicit database");
  }
  versions_->Remove(t);
  if (graph_saturated_) {
    reasoner::Saturator saturator(&schema_);
    // DRed re-derivation probes run against the write epoch just
    // published by Remove — pinned once, so a concurrent writer cannot
    // shift the explicit set mid-maintenance.
    storage::SnapshotPtr write_epoch = versions_->snapshot();
    size_t removed = saturator.Delete(
        &graph_, t,
        [&write_epoch](const rdf::Triple& x) {
          return write_epoch->Contains(x);
        });
    if (removed > 0) sat_snapshot_dirty_ = true;
  } else {
    graph_.Remove(t);
  }
  dat_.reset();
  dat_snapshot_.reset();
  return Status::OK();
}

void QueryAnswerer::EnableViewCache(const engine::ViewCacheOptions& options) {
  if (view_cache_ != nullptr) return;
  view_cache_ = std::make_unique<engine::ViewCache>(options);
  if (!view_hints_.empty()) {
    std::vector<std::string> preferred;
    preferred.reserve(view_hints_.cached_rows.size());
    for (const auto& [key, rows] : view_hints_.cached_rows) {
      preferred.push_back(key);
    }
    view_cache_->SetPreferred(std::move(preferred));
  }
  versions_->SetWriteObserver(view_cache_.get());
}

void QueryAnswerer::DisableViewCache() {
  if (view_cache_ == nullptr) return;
  versions_->SetWriteObserver(nullptr);
  view_cache_.reset();
}

void QueryAnswerer::ApplyViewSelection(
    const optimizer::ViewSelectionResult& selection) {
  view_hints_ = selection.hints;
  if (view_cache_ != nullptr) {
    view_cache_->SetPreferred(selection.chosen_keys);
  }
}

Result<optimizer::ViewSelectionResult> QueryAnswerer::SelectViews(
    const std::vector<optimizer::WorkloadQueryProfile>& workload,
    const optimizer::ViewSelectionOptions& selection,
    const reformulation::ReformulationOptions& reform) {
  reformulation::Reformulator ref(&schema_, reform, &graph_.dict());
  cost::CostModel cost_model(&ref_store_->stats());
  optimizer::ViewSelector selector(&ref, &cost_model);
  RDFREF_ASSIGN_OR_RETURN(optimizer::ViewSelectionResult result,
                          selector.Select(workload, selection));
  ApplyViewSelection(result);
  return result;
}

schema::EncodingReport QueryAnswerer::Reencode(
    const schema::EncoderOptions& options) {
  // The id space is about to shift: every cached view keyed on old ids is
  // garbage. Detach the observer before tearing down the version set.
  if (view_cache_ != nullptr) {
    versions_->SetWriteObserver(nullptr);
    view_cache_->Clear();
  }
  view_hints_ = optimizer::ViewHints{};  // hint keys embed old ids too
  // Fold every sealed and pending update into one flat explicit set.
  versions_->StopBackgroundCompaction();
  versions_->Compact();
  std::vector<rdf::Triple> explicit_triples =
      versions_->snapshot()->Materialize();
  // The version set references ref_store_ as its base: tear both down
  // before the id space shifts underneath them.
  versions_.reset();
  ref_store_.reset();
  sat_store_.reset();
  dat_.reset();
  dat_snapshot_.reset();
  schema::EncodingResult result =
      schema::EncodeGraphHierarchy(&graph_, options);
  for (rdf::Triple& t : explicit_triples) {
    t = rdf::Triple(result.old_to_new[t.s], result.old_to_new[t.p],
                    result.old_to_new[t.o]);
  }
  // Schema ids are stale after the remap; re-extract from the (remapped,
  // closure-carrying) graph and re-close — a no-op closure over a closure.
  schema_ = schema::Schema::FromGraph(graph_);
  schema_.Saturate();
  ref_store_ = std::make_unique<storage::Store>(&graph_.dict(),
                                                std::move(explicit_triples));
  versions_ = std::make_unique<storage::VersionSet>(ref_store_.get());
  if (view_cache_ != nullptr) {
    versions_->SetWriteObserver(view_cache_.get());
  }
  encoding_report_ = result.report;
  return encoding_report_;
}

const storage::Store& QueryAnswerer::sat_store() {
  if (sat_store_ == nullptr) {
    Timer timer;
    reasoner::Saturator saturator(&schema_);
    saturation_added_ = saturator.Saturate(&graph_);
    sat_store_ = std::make_unique<storage::Store>(graph_);
    saturation_millis_ = timer.ElapsedMillis();
    graph_saturated_ = true;
  } else if (sat_snapshot_dirty_) {
    // graph_ was maintained incrementally (Insert / DRed Delete); refresh
    // the index snapshot.
    sat_store_ = std::make_unique<storage::Store>(graph_);
    sat_snapshot_dirty_ = false;
  }
  return *sat_store_;
}

Result<engine::Table> QueryAnswerer::AnswerJucq(
    const query::Cq& q, const query::Cover& cover,
    const reformulation::Reformulator& ref, const AnswerOptions& options,
    AnswerProfile* profile) {
  RDFREF_RETURN_NOT_OK(cover.Validate(q));
  Timer prepare;
  std::vector<query::Cq> fragment_queries = cover.FragmentQueries(q);
  std::vector<query::Ucq> fragment_ucqs;
  fragment_ucqs.reserve(fragment_queries.size());
  uint64_t total_cqs = 0;
  for (const query::Cq& fq : fragment_queries) {
    RDFREF_ASSIGN_OR_RETURN(query::Ucq ucq, ref.Reformulate(fq));
    total_cqs += ucq.size();
    fragment_ucqs.push_back(std::move(ucq));
  }
  double prepare_ms = prepare.ElapsedMillis();

  Timer eval;
  storage::SnapshotPtr snap =
      options.snapshot != nullptr ? options.snapshot : versions_->snapshot();
  engine::Evaluator evaluator(snap.get(), options.threads);
  if (view_cache_ != nullptr && options.use_view_cache) {
    evaluator.set_view_cache(view_cache_.get(), snap->epoch());
  }
  engine::JucqProfile jucq_profile;
  RDFREF_ASSIGN_OR_RETURN(
      engine::Table table,
      evaluator.EvaluateJucq(q, fragment_queries, fragment_ucqs,
                             options.deadline, &jucq_profile));
  if (profile != nullptr) {
    profile->prepare_millis += prepare_ms;
    profile->eval_millis = eval.ElapsedMillis();
    profile->reformulation_cqs = total_cqs;
    profile->cover = cover;
    profile->jucq = std::move(jucq_profile);
  }
  return table;
}

Result<engine::Table> QueryAnswerer::AnswerUnion(
    const query::Ucq& user_union, Strategy strategy, AnswerProfile* profile,
    const AnswerOptions& options) {
  if (user_union.empty()) {
    return Status::InvalidArgument("empty union query");
  }
  engine::Table result;
  AnswerProfile branch_profile;
  if (profile != nullptr) *profile = AnswerProfile{};
  // Pin one epoch for the whole union: every branch must see the same
  // database even while writers race between branch evaluations.
  AnswerOptions pinned = options;
  if (pinned.snapshot == nullptr) pinned.snapshot = versions_->snapshot();
  for (size_t i = 0; i < user_union.members().size(); ++i) {
    const query::Cq& branch = user_union.members()[i];
    if (branch.head().size() != user_union.members()[0].head().size()) {
      return Status::InvalidArgument("union branches differ in arity");
    }
    RDFREF_ASSIGN_OR_RETURN(
        engine::Table branch_table,
        Answer(branch, strategy, &branch_profile, pinned));
    if (i == 0) {
      result = std::move(branch_table);
    } else {
      result.Append(branch_table);
    }
    if (profile != nullptr) {
      profile->prepare_millis += branch_profile.prepare_millis;
      profile->eval_millis += branch_profile.eval_millis;
      profile->reformulation_cqs += branch_profile.reformulation_cqs;
    }
  }
  result.Dedup();
  return result;
}

Result<engine::Table> QueryAnswerer::Answer(const query::Cq& q,
                                            Strategy strategy,
                                            AnswerProfile* profile,
                                            const AnswerOptions& options) {
  if (!q.IsSafe()) {
    return Status::InvalidArgument(
        "unsafe query: every head variable must occur in the body");
  }
  if (options.deadline.expired()) {
    return Status::DeadlineExceeded("deadline expired before answering");
  }
  if (profile != nullptr) *profile = AnswerProfile{};
  switch (strategy) {
    case Strategy::kSaturation: {
      const bool first = sat_store_ == nullptr;
      const storage::Store& store = sat_store();
      Timer eval;
      engine::Evaluator evaluator(&store);
      engine::Table table = evaluator.EvaluateCq(q);
      if (profile != nullptr) {
        profile->prepare_millis = first ? saturation_millis_ : 0.0;
        profile->eval_millis = eval.ElapsedMillis();
      }
      return table;
    }
    case Strategy::kRefUcq: {
      reformulation::Reformulator ref(&schema_, options.reform,
                                      &graph_.dict());
      Timer prepare;
      RDFREF_ASSIGN_OR_RETURN(query::Ucq ucq, ref.Reformulate(q));
      double prepare_ms = prepare.ElapsedMillis();
      Timer eval;
      storage::SnapshotPtr snap = options.snapshot != nullptr
                                      ? options.snapshot
                                      : versions_->snapshot();
      engine::Evaluator evaluator(snap.get(), options.threads);
      if (view_cache_ != nullptr && options.use_view_cache) {
        evaluator.set_view_cache(view_cache_.get(), snap->epoch());
      }
      RDFREF_ASSIGN_OR_RETURN(
          engine::Table table,
          evaluator.EvaluateUcqView(q, ucq, options.deadline));
      if (profile != nullptr) {
        profile->prepare_millis = prepare_ms;
        profile->eval_millis = eval.ElapsedMillis();
        profile->reformulation_cqs = ucq.size();
        profile->cover = query::Cover::SingleFragment(q.body().size());
      }
      return table;
    }
    case Strategy::kRefScq: {
      reformulation::Reformulator ref(&schema_, options.reform,
                                      &graph_.dict());
      return AnswerJucq(q, query::Cover::Singletons(q.body().size()), ref,
                        options, profile);
    }
    case Strategy::kRefJucq: {
      reformulation::Reformulator ref(&schema_, options.reform,
                                      &graph_.dict());
      return AnswerJucq(q, options.cover, ref, options, profile);
    }
    case Strategy::kRefGcov: {
      reformulation::Reformulator ref(&schema_, options.reform,
                                      &graph_.dict());
      cost::CostModel cost_model(&ref_store_->stats());
      optimizer::CoverOptimizer optimizer(
          &ref, &cost_model, view_hints_.empty() ? nullptr : &view_hints_);
      Timer search;
      optimizer::GcovTrace trace;
      RDFREF_ASSIGN_OR_RETURN(query::Cover cover, optimizer.Greedy(q, &trace));
      double search_ms = search.ElapsedMillis();
      if (profile != nullptr) {
        profile->gcov = trace;
        profile->prepare_millis = search_ms;  // AnswerJucq adds to this
      }
      return AnswerJucq(q, cover, ref, options, profile);
    }
    case Strategy::kRefIncomplete: {
      reformulation::IncompleteReformulator ref(&schema_, options.reform,
                                                &graph_.dict());
      Timer prepare;
      RDFREF_ASSIGN_OR_RETURN(query::Ucq ucq, ref.Reformulate(q));
      double prepare_ms = prepare.ElapsedMillis();
      Timer eval;
      storage::SnapshotPtr snap = options.snapshot != nullptr
                                      ? options.snapshot
                                      : versions_->snapshot();
      engine::Evaluator evaluator(snap.get(), options.threads);
      if (view_cache_ != nullptr && options.use_view_cache) {
        evaluator.set_view_cache(view_cache_.get(), snap->epoch());
      }
      RDFREF_ASSIGN_OR_RETURN(
          engine::Table table,
          evaluator.EvaluateUcqView(q, ucq, options.deadline));
      if (profile != nullptr) {
        profile->prepare_millis = prepare_ms;
        profile->eval_millis = eval.ElapsedMillis();
        profile->reformulation_cqs = ucq.size();
      }
      return table;
    }
    case Strategy::kDatalog: {
      if (dat_ == nullptr) {
        // The program pins the epoch it is built against; updates reset
        // dat_ (and this pin), so the closure is never stale.
        dat_snapshot_ = options.snapshot != nullptr ? options.snapshot
                                                    : versions_->snapshot();
        dat_ = std::make_unique<datalog::DatalogAnswerer>(dat_snapshot_.get());
      }
      const double closure_before = dat_->closure_millis();
      Timer eval;
      RDFREF_ASSIGN_OR_RETURN(engine::Table table, dat_->Answer(q));
      if (profile != nullptr) {
        // The closure runs inside the first Answer call.
        profile->prepare_millis = dat_->closure_millis() - closure_before;
        profile->eval_millis =
            eval.ElapsedMillis() - profile->prepare_millis;
      }
      return table;
    }
  }
  return Status::InvalidArgument("unknown strategy");
}

}  // namespace api
}  // namespace rdfref
