#ifndef RDFREF_API_QUERY_ANSWERING_H_
#define RDFREF_API_QUERY_ANSWERING_H_

#include <memory>
#include <string>

#include "common/annotations.h"
#include "common/deadline.h"
#include "common/result.h"
#include "datalog/rdf_datalog.h"
#include "engine/evaluator.h"
#include "engine/table.h"
#include "engine/view_cache.h"
#include "optimizer/gcov.h"
#include "optimizer/view_selection.h"
#include "query/cover.h"
#include "query/cq.h"
#include "reasoner/saturation.h"
#include "reformulation/reformulator.h"
#include "rdf/graph.h"
#include "schema/encoder.h"
#include "schema/schema.h"
#include "storage/store.h"
#include "storage/version_set.h"

namespace rdfref {
namespace api {

/// \brief The query answering techniques the demonstration compares
/// (Sections 1 and 5).
enum class Strategy {
  kSaturation,     ///< Sat: saturate once, evaluate directly
  kRefUcq,         ///< Ref with the classic UCQ reformulation [7,8,9,12,16]
  kRefScq,         ///< Ref with the SCQ reformulation of [15]
  kRefJucq,        ///< Ref with an explicit user-chosen cover (JUCQ)
  kRefGcov,        ///< Ref with the GCov cost-selected cover [5]
  kRefIncomplete,  ///< fixed incomplete Ref (Virtuoso/AllegroGraph-style)
  kDatalog,        ///< Dat: Datalog encoding + semi-naive (LogicBlox-style)
};

/// \brief Short display name, e.g. "REF-GCOV".
const char* StrategyName(Strategy s);

/// \brief Per-call options.
struct AnswerOptions {
  /// Cover for kRefJucq (ignored otherwise).
  query::Cover cover;
  /// Reformulation budget (the UCQ size beyond which Ref "fails", as the
  /// 318,096-CQ reformulation of Example 1 does on real systems).
  reformulation::ReformulationOptions reform;
  /// Wall-clock budget for the call. Checked at CQ boundaries of the
  /// UCQ/SCQ/JUCQ evaluation loops (and before each strategy's evaluation
  /// starts): once expired, Answer returns kDeadlineExceeded with whatever
  /// profile was gathered so far. Default: infinite.
  Deadline deadline;
  /// Evaluation parallelism for the Ref strategies (UCQ member chunks,
  /// JUCQ fragment materialization). 1 (the default) keeps evaluation on
  /// the calling thread — the Sat and Dat baselines are single-threaded,
  /// so comparisons stay apples-to-apples unless parallelism is asked
  /// for. 0 resolves to common::ThreadPool::DefaultThreads(); n > 1
  /// bounds the concurrent tasks at n. Answers are bit-identical across
  /// all settings.
  int threads = 1;
  /// Pinned snapshot for the Ref strategies: when set, evaluation runs
  /// against exactly this epoch of the explicit database, regardless of
  /// concurrent updates (pin one with PinSnapshot()). When null, each call
  /// pins the current epoch itself. kSaturation is unaffected (it reads the
  /// saturated store, whose maintenance is externally synchronized);
  /// kDatalog evaluates the snapshot it pinned when its program was built —
  /// updates reset the program, so it is never stale.
  storage::SnapshotPtr snapshot;
  /// Per-call opt-out of the cross-query view cache: when false, this call
  /// neither probes nor populates it. No effect unless EnableViewCache()
  /// was called. Cached and uncached answers are bit-identical — this knob
  /// exists for measurement (cold-vs-warm comparisons) and for oracle
  /// tests that need an independent evaluation.
  bool use_view_cache = true;
};

/// \brief Measurements of one Answer() call — what the demonstration's
/// screens display.
struct AnswerProfile {
  /// Time preparing the strategy: saturation (first Sat call), Datalog
  /// closure (first Dat call), reformulation, or GCov search.
  double prepare_millis = 0.0;
  /// Time evaluating against the store.
  double eval_millis = 0.0;
  /// Total CQs across the evaluated UCQ(s).
  uint64_t reformulation_cqs = 0;
  /// Cover used (Ref strategies on covers).
  query::Cover cover;
  /// Per-fragment detail (JUCQ-style strategies).
  engine::JucqProfile jucq;
  /// Search trace (kRefGcov).
  optimizer::GcovTrace gcov;
};

/// \brief One-stop query answering over an RDF graph with RDFS constraints
/// — the public entry point of the library.
///
/// On construction the answerer extracts the schema, saturates it (schema
/// saturation is cheap and is the standing assumption of the reformulation
/// rules [9]), stores the saturated constraints back, and indexes the
/// explicit triples (the Ref database). The saturated database (Sat) and
/// the Datalog program (Dat) are built lazily on first use.
class QueryAnswerer {
 public:
  /// \brief Takes ownership of the graph (data + constraint triples).
  ///
  /// Before anything else the graph's id space is hierarchy-encoded
  /// (schema::EncodeGraphHierarchy): every class/property subtree becomes a
  /// contiguous TermId interval, which lets the reformulator collapse
  /// subclass/subproperty unions into single range-scan atoms. TermIds the
  /// caller interned before construction are therefore *remapped* — resolve
  /// ids through dict() afterwards, not from values held across the call.
  explicit QueryAnswerer(rdf::Graph graph,
                         const schema::EncoderOptions& encoder_options = {});

  QueryAnswerer(const QueryAnswerer&) = delete;
  QueryAnswerer& operator=(const QueryAnswerer&) = delete;

  /// \brief Answers q using the given strategy. All strategies return the
  /// same (complete) answer except kRefIncomplete, which may miss tuples.
  Result<engine::Table> Answer(const query::Cq& q, Strategy strategy,
                               AnswerProfile* profile = nullptr,
                               const AnswerOptions& options = {});

  /// \brief Answers a union of BGPs (the paper's full query dialect):
  /// every branch is answered with `strategy` and the results are unioned
  /// with duplicate elimination. Branch heads must share arity.
  Result<engine::Table> AnswerUnion(const query::Ucq& user_union,
                                    Strategy strategy,
                                    AnswerProfile* profile = nullptr,
                                    const AnswerOptions& options = {});

  /// \brief Inserts an explicit triple. Instance triples are visible to the
  /// Ref strategies immediately (two hash operations); Sat maintenance
  /// chases their consequences incrementally; Dat rebuilds its program
  /// lazily. Constraint (schema) triples are accepted too: the schema is
  /// extended, re-saturated, and the entailed constraints are stored — the
  /// hierarchy encoding stays *sound* (schema growth is monotone, so
  /// existing intervals never over-approximate) and the new edges fall back
  /// to classic reformulation members until Reencode() is called.
  Status InsertTriple(const rdf::Triple& t);

  /// \brief Removes an explicit instance triple (DRed maintenance on the
  /// Sat side). Constraint (schema) triples cannot be retracted (RDFS
  /// entailment is monotone; removal would require full re-derivation) —
  /// rebuild the answerer for those.
  Status RemoveTriple(const rdf::Triple& t);

  /// \brief Rebuilds the hierarchy encoding at a compaction point: folds
  /// every sealed update into one base store, recomputes the interval id
  /// space from the *current* schema (picking up edges inserted after
  /// load, which until now escaped to classic members), and remaps every
  /// layer through the new dictionary. All previously issued TermIds are
  /// invalidated (resolve through dict() again) and any pinned snapshots
  /// or background compaction must be released/stopped by the caller
  /// first. Returns the fresh encoder report.
  schema::EncodingReport Reencode(const schema::EncoderOptions& options = {});

  /// \brief Turns on the cross-query view cache (DESIGN.md §15): the Ref
  /// strategies then probe it before materializing whole reformulated
  /// unions (kRefUcq, kRefIncomplete) and JUCQ fragments (kRefScq,
  /// kRefJucq, kRefGcov), and every visibility-changing update feeds its
  /// epoch-invalidation window. Idempotent (a second call with the cache
  /// already on keeps the existing cache). Call before concurrent
  /// answering starts — like the lazy Sat/Dat builds, cache setup is not
  /// synchronized against in-flight Answer calls.
  void EnableViewCache(const engine::ViewCacheOptions& options = {});

  /// \brief Detaches and destroys the view cache (same synchronization
  /// caveat as EnableViewCache).
  void DisableViewCache();

  bool view_cache_enabled() const { return view_cache_ != nullptr; }

  /// \brief Counters of the enabled cache (zeros when disabled).
  engine::ViewCacheStats view_cache_stats() const {
    return view_cache_ != nullptr ? view_cache_->Stats()
                                  : engine::ViewCacheStats{};
  }

  /// \brief Runs the workload-driven view-selection pass over a weighted
  /// query mix (optimizer::ViewSelector with this answerer's schema and
  /// statistics) and applies the outcome: chosen canonical fragments get
  /// eviction protection in the view cache and rescan-cost hints in GCov
  /// cover selection. Returns the scored selection for reporting. Same
  /// synchronization caveat as EnableViewCache.
  Result<optimizer::ViewSelectionResult> SelectViews(
      const std::vector<optimizer::WorkloadQueryProfile>& workload,
      const optimizer::ViewSelectionOptions& selection = {},
      const reformulation::ReformulationOptions& reform = {});

  /// \brief Applies an externally computed selection (see SelectViews).
  void ApplyViewSelection(const optimizer::ViewSelectionResult& selection);

  /// \brief The load-time (or latest Reencode) hierarchy-encoder report.
  const schema::EncodingReport& encoding_report() const RDFREF_LIFETIME_BOUND {
    return encoding_report_;
  }

  /// \brief Pins the current epoch of the explicit database as an
  /// immutable snapshot: the view the Ref strategies would evaluate
  /// against right now. Hold the pointer to keep evaluating that exact
  /// epoch while concurrent updates proceed; pass it via
  /// AnswerOptions::snapshot to answer queries against it.
  storage::SnapshotPtr PinSnapshot() const { return versions_->snapshot(); }

  /// \brief The versioned explicit database (updates, snapshots, and
  /// freeze/compact maintenance).
  storage::VersionSet& versions() RDFREF_LIFETIME_BOUND { return *versions_; }
  const storage::VersionSet& versions() const RDFREF_LIFETIME_BOUND {
    return *versions_;
  }

  /// \brief Dictionary for parsing queries against this database.
  rdf::Dictionary& dict() RDFREF_LIFETIME_BOUND { return graph_.dict(); }

  const schema::Schema& schema() const RDFREF_LIFETIME_BOUND {
    return schema_;
  }

  /// \brief The explicit database (with saturated schema triples).
  const storage::Store& ref_store() const RDFREF_LIFETIME_BOUND {
    return *ref_store_;
  }

  /// \brief The saturated database; saturates lazily on first call.
  const storage::Store& sat_store() RDFREF_LIFETIME_BOUND;

  /// \brief Milliseconds the lazy saturation took (0 before it ran).
  double saturation_millis() const { return saturation_millis_; }

  /// \brief Triples added by saturation (0 before it ran).
  size_t saturation_added() const { return saturation_added_; }

  /// \brief Number of explicit triples (incl. saturated schema).
  size_t num_explicit_triples() const { return ref_store_->size(); }

 private:
  Result<engine::Table> AnswerJucq(const query::Cq& q,
                                   const query::Cover& cover,
                                   const reformulation::Reformulator& ref,
                                   const AnswerOptions& options,
                                   AnswerProfile* profile);

  Status InsertSchemaTriple(const rdf::Triple& t);

  rdf::Graph graph_;
  schema::Schema schema_;
  schema::EncodingReport encoding_report_;
  // The view cache is registered as versions_'s write observer: keep it
  // declared before the version set so it is destroyed after it and the
  // observer pointer can never dangle during teardown.
  std::unique_ptr<engine::ViewCache> view_cache_;
  optimizer::ViewHints view_hints_;  // from the latest view selection
  // versions_ references ref_store_ as its initial base: keep the store
  // declared first so the version set is destroyed before it.
  std::unique_ptr<storage::Store> ref_store_;
  std::unique_ptr<storage::VersionSet> versions_;
  std::unique_ptr<storage::Store> sat_store_;
  // Epoch the Datalog program was built against (kept alive with dat_).
  storage::SnapshotPtr dat_snapshot_;
  std::unique_ptr<datalog::DatalogAnswerer> dat_;
  double saturation_millis_ = 0.0;
  size_t saturation_added_ = 0;
  bool graph_saturated_ = false;  // graph_ holds G∞ (kept so by updates)
  bool sat_snapshot_dirty_ = false;
};

}  // namespace api
}  // namespace rdfref

#endif  // RDFREF_API_QUERY_ANSWERING_H_
