file(REMOVE_RECURSE
  "CMakeFiles/demo_walkthrough.dir/demo_walkthrough.cpp.o"
  "CMakeFiles/demo_walkthrough.dir/demo_walkthrough.cpp.o.d"
  "demo_walkthrough"
  "demo_walkthrough.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/demo_walkthrough.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
