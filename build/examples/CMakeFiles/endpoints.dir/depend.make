# Empty dependencies file for endpoints.
# This may be replaced when dependencies are built.
