# Empty compiler generated dependencies file for endpoints.
# This may be replaced when dependencies are built.
