file(REMOVE_RECURSE
  "CMakeFiles/endpoints.dir/endpoints.cpp.o"
  "CMakeFiles/endpoints.dir/endpoints.cpp.o.d"
  "endpoints"
  "endpoints.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/endpoints.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
