# Empty dependencies file for rdfref_cli.
# This may be replaced when dependencies are built.
