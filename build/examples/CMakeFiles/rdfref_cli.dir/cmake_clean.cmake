file(REMOVE_RECURSE
  "CMakeFiles/rdfref_cli.dir/rdfref_cli.cpp.o"
  "CMakeFiles/rdfref_cli.dir/rdfref_cli.cpp.o.d"
  "rdfref_cli"
  "rdfref_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rdfref_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
