# Empty compiler generated dependencies file for university_demo.
# This may be replaced when dependencies are built.
