file(REMOVE_RECURSE
  "CMakeFiles/university_demo.dir/university_demo.cpp.o"
  "CMakeFiles/university_demo.dir/university_demo.cpp.o.d"
  "university_demo"
  "university_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/university_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
