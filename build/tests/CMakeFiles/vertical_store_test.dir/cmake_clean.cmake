file(REMOVE_RECURSE
  "CMakeFiles/vertical_store_test.dir/vertical_store_test.cc.o"
  "CMakeFiles/vertical_store_test.dir/vertical_store_test.cc.o.d"
  "vertical_store_test"
  "vertical_store_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vertical_store_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
