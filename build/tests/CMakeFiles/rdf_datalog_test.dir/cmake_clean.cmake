file(REMOVE_RECURSE
  "CMakeFiles/rdf_datalog_test.dir/rdf_datalog_test.cc.o"
  "CMakeFiles/rdf_datalog_test.dir/rdf_datalog_test.cc.o.d"
  "rdf_datalog_test"
  "rdf_datalog_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rdf_datalog_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
