file(REMOVE_RECURSE
  "CMakeFiles/updates_test.dir/updates_test.cc.o"
  "CMakeFiles/updates_test.dir/updates_test.cc.o.d"
  "updates_test"
  "updates_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/updates_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
