
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/equivalence_property_test.cc" "tests/CMakeFiles/equivalence_property_test.dir/equivalence_property_test.cc.o" "gcc" "tests/CMakeFiles/equivalence_property_test.dir/equivalence_property_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/api/CMakeFiles/rdfref_api.dir/DependInfo.cmake"
  "/root/repo/build/src/datagen/CMakeFiles/rdfref_datagen.dir/DependInfo.cmake"
  "/root/repo/build/src/federation/CMakeFiles/rdfref_federation.dir/DependInfo.cmake"
  "/root/repo/build/src/datalog/CMakeFiles/rdfref_datalog.dir/DependInfo.cmake"
  "/root/repo/build/src/reasoner/CMakeFiles/rdfref_reasoner.dir/DependInfo.cmake"
  "/root/repo/build/src/engine/CMakeFiles/rdfref_engine.dir/DependInfo.cmake"
  "/root/repo/build/src/optimizer/CMakeFiles/rdfref_optimizer.dir/DependInfo.cmake"
  "/root/repo/build/src/cost/CMakeFiles/rdfref_cost.dir/DependInfo.cmake"
  "/root/repo/build/src/reformulation/CMakeFiles/rdfref_reformulation.dir/DependInfo.cmake"
  "/root/repo/build/src/query/CMakeFiles/rdfref_query.dir/DependInfo.cmake"
  "/root/repo/build/src/schema/CMakeFiles/rdfref_schema.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/rdfref_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/rdf/CMakeFiles/rdfref_rdf.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/rdfref_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
