file(REMOVE_RECURSE
  "CMakeFiles/reformulator_test.dir/reformulator_test.cc.o"
  "CMakeFiles/reformulator_test.dir/reformulator_test.cc.o.d"
  "reformulator_test"
  "reformulator_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/reformulator_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
