# Empty compiler generated dependencies file for gcov_test.
# This may be replaced when dependencies are built.
