file(REMOVE_RECURSE
  "CMakeFiles/gcov_test.dir/gcov_test.cc.o"
  "CMakeFiles/gcov_test.dir/gcov_test.cc.o.d"
  "gcov_test"
  "gcov_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gcov_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
