file(REMOVE_RECURSE
  "librdfref_reasoner.a"
)
