# Empty dependencies file for rdfref_reasoner.
# This may be replaced when dependencies are built.
