file(REMOVE_RECURSE
  "CMakeFiles/rdfref_reasoner.dir/saturation.cc.o"
  "CMakeFiles/rdfref_reasoner.dir/saturation.cc.o.d"
  "librdfref_reasoner.a"
  "librdfref_reasoner.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rdfref_reasoner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
