file(REMOVE_RECURSE
  "librdfref_rdf.a"
)
