file(REMOVE_RECURSE
  "CMakeFiles/rdfref_rdf.dir/dictionary.cc.o"
  "CMakeFiles/rdfref_rdf.dir/dictionary.cc.o.d"
  "CMakeFiles/rdfref_rdf.dir/graph.cc.o"
  "CMakeFiles/rdfref_rdf.dir/graph.cc.o.d"
  "CMakeFiles/rdfref_rdf.dir/parser.cc.o"
  "CMakeFiles/rdfref_rdf.dir/parser.cc.o.d"
  "CMakeFiles/rdfref_rdf.dir/term.cc.o"
  "CMakeFiles/rdfref_rdf.dir/term.cc.o.d"
  "librdfref_rdf.a"
  "librdfref_rdf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rdfref_rdf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
