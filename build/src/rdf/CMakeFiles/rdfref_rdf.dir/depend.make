# Empty dependencies file for rdfref_rdf.
# This may be replaced when dependencies are built.
