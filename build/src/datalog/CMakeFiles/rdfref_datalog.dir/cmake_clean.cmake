file(REMOVE_RECURSE
  "CMakeFiles/rdfref_datalog.dir/program.cc.o"
  "CMakeFiles/rdfref_datalog.dir/program.cc.o.d"
  "CMakeFiles/rdfref_datalog.dir/rdf_datalog.cc.o"
  "CMakeFiles/rdfref_datalog.dir/rdf_datalog.cc.o.d"
  "CMakeFiles/rdfref_datalog.dir/seminaive.cc.o"
  "CMakeFiles/rdfref_datalog.dir/seminaive.cc.o.d"
  "librdfref_datalog.a"
  "librdfref_datalog.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rdfref_datalog.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
