file(REMOVE_RECURSE
  "librdfref_datalog.a"
)
