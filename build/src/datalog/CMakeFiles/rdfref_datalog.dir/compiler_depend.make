# Empty compiler generated dependencies file for rdfref_datalog.
# This may be replaced when dependencies are built.
