# Empty dependencies file for rdfref_common.
# This may be replaced when dependencies are built.
