# Empty compiler generated dependencies file for rdfref_common.
# This may be replaced when dependencies are built.
