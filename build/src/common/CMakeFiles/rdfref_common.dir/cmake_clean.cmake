file(REMOVE_RECURSE
  "CMakeFiles/rdfref_common.dir/status.cc.o"
  "CMakeFiles/rdfref_common.dir/status.cc.o.d"
  "CMakeFiles/rdfref_common.dir/string_util.cc.o"
  "CMakeFiles/rdfref_common.dir/string_util.cc.o.d"
  "librdfref_common.a"
  "librdfref_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rdfref_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
