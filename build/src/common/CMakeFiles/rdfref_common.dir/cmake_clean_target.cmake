file(REMOVE_RECURSE
  "librdfref_common.a"
)
