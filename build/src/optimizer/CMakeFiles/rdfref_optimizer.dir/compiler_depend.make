# Empty compiler generated dependencies file for rdfref_optimizer.
# This may be replaced when dependencies are built.
