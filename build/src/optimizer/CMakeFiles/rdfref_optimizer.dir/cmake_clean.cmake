file(REMOVE_RECURSE
  "CMakeFiles/rdfref_optimizer.dir/gcov.cc.o"
  "CMakeFiles/rdfref_optimizer.dir/gcov.cc.o.d"
  "librdfref_optimizer.a"
  "librdfref_optimizer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rdfref_optimizer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
