# Empty dependencies file for rdfref_optimizer.
# This may be replaced when dependencies are built.
