file(REMOVE_RECURSE
  "librdfref_optimizer.a"
)
