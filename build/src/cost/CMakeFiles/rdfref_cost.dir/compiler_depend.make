# Empty compiler generated dependencies file for rdfref_cost.
# This may be replaced when dependencies are built.
