file(REMOVE_RECURSE
  "CMakeFiles/rdfref_cost.dir/cardinality.cc.o"
  "CMakeFiles/rdfref_cost.dir/cardinality.cc.o.d"
  "CMakeFiles/rdfref_cost.dir/cost_model.cc.o"
  "CMakeFiles/rdfref_cost.dir/cost_model.cc.o.d"
  "librdfref_cost.a"
  "librdfref_cost.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rdfref_cost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
