
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cost/cardinality.cc" "src/cost/CMakeFiles/rdfref_cost.dir/cardinality.cc.o" "gcc" "src/cost/CMakeFiles/rdfref_cost.dir/cardinality.cc.o.d"
  "/root/repo/src/cost/cost_model.cc" "src/cost/CMakeFiles/rdfref_cost.dir/cost_model.cc.o" "gcc" "src/cost/CMakeFiles/rdfref_cost.dir/cost_model.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/query/CMakeFiles/rdfref_query.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/rdfref_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/rdf/CMakeFiles/rdfref_rdf.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/rdfref_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
