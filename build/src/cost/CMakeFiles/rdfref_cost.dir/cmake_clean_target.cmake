file(REMOVE_RECURSE
  "librdfref_cost.a"
)
