file(REMOVE_RECURSE
  "CMakeFiles/rdfref_api.dir/query_answering.cc.o"
  "CMakeFiles/rdfref_api.dir/query_answering.cc.o.d"
  "librdfref_api.a"
  "librdfref_api.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rdfref_api.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
