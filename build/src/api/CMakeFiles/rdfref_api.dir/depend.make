# Empty dependencies file for rdfref_api.
# This may be replaced when dependencies are built.
