file(REMOVE_RECURSE
  "librdfref_api.a"
)
