# Empty compiler generated dependencies file for rdfref_api.
# This may be replaced when dependencies are built.
