file(REMOVE_RECURSE
  "CMakeFiles/rdfref_query.dir/cover.cc.o"
  "CMakeFiles/rdfref_query.dir/cover.cc.o.d"
  "CMakeFiles/rdfref_query.dir/cq.cc.o"
  "CMakeFiles/rdfref_query.dir/cq.cc.o.d"
  "CMakeFiles/rdfref_query.dir/minimize.cc.o"
  "CMakeFiles/rdfref_query.dir/minimize.cc.o.d"
  "CMakeFiles/rdfref_query.dir/sparql_parser.cc.o"
  "CMakeFiles/rdfref_query.dir/sparql_parser.cc.o.d"
  "CMakeFiles/rdfref_query.dir/ucq.cc.o"
  "CMakeFiles/rdfref_query.dir/ucq.cc.o.d"
  "librdfref_query.a"
  "librdfref_query.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rdfref_query.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
