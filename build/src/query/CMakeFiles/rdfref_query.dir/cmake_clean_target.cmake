file(REMOVE_RECURSE
  "librdfref_query.a"
)
