# Empty dependencies file for rdfref_query.
# This may be replaced when dependencies are built.
