
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/query/cover.cc" "src/query/CMakeFiles/rdfref_query.dir/cover.cc.o" "gcc" "src/query/CMakeFiles/rdfref_query.dir/cover.cc.o.d"
  "/root/repo/src/query/cq.cc" "src/query/CMakeFiles/rdfref_query.dir/cq.cc.o" "gcc" "src/query/CMakeFiles/rdfref_query.dir/cq.cc.o.d"
  "/root/repo/src/query/minimize.cc" "src/query/CMakeFiles/rdfref_query.dir/minimize.cc.o" "gcc" "src/query/CMakeFiles/rdfref_query.dir/minimize.cc.o.d"
  "/root/repo/src/query/sparql_parser.cc" "src/query/CMakeFiles/rdfref_query.dir/sparql_parser.cc.o" "gcc" "src/query/CMakeFiles/rdfref_query.dir/sparql_parser.cc.o.d"
  "/root/repo/src/query/ucq.cc" "src/query/CMakeFiles/rdfref_query.dir/ucq.cc.o" "gcc" "src/query/CMakeFiles/rdfref_query.dir/ucq.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/rdf/CMakeFiles/rdfref_rdf.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/rdfref_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
