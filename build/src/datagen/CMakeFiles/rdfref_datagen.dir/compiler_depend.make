# Empty compiler generated dependencies file for rdfref_datagen.
# This may be replaced when dependencies are built.
