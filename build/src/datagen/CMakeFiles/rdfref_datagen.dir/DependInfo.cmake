
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/datagen/bibliography.cc" "src/datagen/CMakeFiles/rdfref_datagen.dir/bibliography.cc.o" "gcc" "src/datagen/CMakeFiles/rdfref_datagen.dir/bibliography.cc.o.d"
  "/root/repo/src/datagen/dblp.cc" "src/datagen/CMakeFiles/rdfref_datagen.dir/dblp.cc.o" "gcc" "src/datagen/CMakeFiles/rdfref_datagen.dir/dblp.cc.o.d"
  "/root/repo/src/datagen/geo.cc" "src/datagen/CMakeFiles/rdfref_datagen.dir/geo.cc.o" "gcc" "src/datagen/CMakeFiles/rdfref_datagen.dir/geo.cc.o.d"
  "/root/repo/src/datagen/lubm.cc" "src/datagen/CMakeFiles/rdfref_datagen.dir/lubm.cc.o" "gcc" "src/datagen/CMakeFiles/rdfref_datagen.dir/lubm.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/rdf/CMakeFiles/rdfref_rdf.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/rdfref_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
