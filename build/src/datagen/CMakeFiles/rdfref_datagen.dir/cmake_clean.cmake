file(REMOVE_RECURSE
  "CMakeFiles/rdfref_datagen.dir/bibliography.cc.o"
  "CMakeFiles/rdfref_datagen.dir/bibliography.cc.o.d"
  "CMakeFiles/rdfref_datagen.dir/dblp.cc.o"
  "CMakeFiles/rdfref_datagen.dir/dblp.cc.o.d"
  "CMakeFiles/rdfref_datagen.dir/geo.cc.o"
  "CMakeFiles/rdfref_datagen.dir/geo.cc.o.d"
  "CMakeFiles/rdfref_datagen.dir/lubm.cc.o"
  "CMakeFiles/rdfref_datagen.dir/lubm.cc.o.d"
  "librdfref_datagen.a"
  "librdfref_datagen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rdfref_datagen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
