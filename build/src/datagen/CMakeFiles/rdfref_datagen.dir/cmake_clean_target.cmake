file(REMOVE_RECURSE
  "librdfref_datagen.a"
)
