file(REMOVE_RECURSE
  "librdfref_engine.a"
)
