# Empty dependencies file for rdfref_engine.
# This may be replaced when dependencies are built.
