file(REMOVE_RECURSE
  "CMakeFiles/rdfref_engine.dir/evaluator.cc.o"
  "CMakeFiles/rdfref_engine.dir/evaluator.cc.o.d"
  "CMakeFiles/rdfref_engine.dir/table.cc.o"
  "CMakeFiles/rdfref_engine.dir/table.cc.o.d"
  "librdfref_engine.a"
  "librdfref_engine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rdfref_engine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
