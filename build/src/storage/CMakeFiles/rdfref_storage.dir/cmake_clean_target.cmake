file(REMOVE_RECURSE
  "librdfref_storage.a"
)
