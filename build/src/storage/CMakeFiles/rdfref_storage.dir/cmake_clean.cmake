file(REMOVE_RECURSE
  "CMakeFiles/rdfref_storage.dir/delta_store.cc.o"
  "CMakeFiles/rdfref_storage.dir/delta_store.cc.o.d"
  "CMakeFiles/rdfref_storage.dir/serialize.cc.o"
  "CMakeFiles/rdfref_storage.dir/serialize.cc.o.d"
  "CMakeFiles/rdfref_storage.dir/statistics.cc.o"
  "CMakeFiles/rdfref_storage.dir/statistics.cc.o.d"
  "CMakeFiles/rdfref_storage.dir/store.cc.o"
  "CMakeFiles/rdfref_storage.dir/store.cc.o.d"
  "CMakeFiles/rdfref_storage.dir/vertical_store.cc.o"
  "CMakeFiles/rdfref_storage.dir/vertical_store.cc.o.d"
  "librdfref_storage.a"
  "librdfref_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rdfref_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
