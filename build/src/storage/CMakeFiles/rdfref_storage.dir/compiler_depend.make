# Empty compiler generated dependencies file for rdfref_storage.
# This may be replaced when dependencies are built.
