file(REMOVE_RECURSE
  "CMakeFiles/rdfref_reformulation.dir/reformulator.cc.o"
  "CMakeFiles/rdfref_reformulation.dir/reformulator.cc.o.d"
  "librdfref_reformulation.a"
  "librdfref_reformulation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rdfref_reformulation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
