
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/reformulation/reformulator.cc" "src/reformulation/CMakeFiles/rdfref_reformulation.dir/reformulator.cc.o" "gcc" "src/reformulation/CMakeFiles/rdfref_reformulation.dir/reformulator.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/query/CMakeFiles/rdfref_query.dir/DependInfo.cmake"
  "/root/repo/build/src/schema/CMakeFiles/rdfref_schema.dir/DependInfo.cmake"
  "/root/repo/build/src/rdf/CMakeFiles/rdfref_rdf.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/rdfref_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
