file(REMOVE_RECURSE
  "librdfref_reformulation.a"
)
