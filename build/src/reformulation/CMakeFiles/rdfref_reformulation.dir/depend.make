# Empty dependencies file for rdfref_reformulation.
# This may be replaced when dependencies are built.
