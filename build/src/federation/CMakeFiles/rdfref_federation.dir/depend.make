# Empty dependencies file for rdfref_federation.
# This may be replaced when dependencies are built.
