file(REMOVE_RECURSE
  "librdfref_federation.a"
)
