file(REMOVE_RECURSE
  "CMakeFiles/rdfref_federation.dir/endpoint.cc.o"
  "CMakeFiles/rdfref_federation.dir/endpoint.cc.o.d"
  "CMakeFiles/rdfref_federation.dir/federation.cc.o"
  "CMakeFiles/rdfref_federation.dir/federation.cc.o.d"
  "librdfref_federation.a"
  "librdfref_federation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rdfref_federation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
