# Empty dependencies file for rdfref_schema.
# This may be replaced when dependencies are built.
