file(REMOVE_RECURSE
  "librdfref_schema.a"
)
