file(REMOVE_RECURSE
  "CMakeFiles/rdfref_schema.dir/schema.cc.o"
  "CMakeFiles/rdfref_schema.dir/schema.cc.o.d"
  "librdfref_schema.a"
  "librdfref_schema.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rdfref_schema.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
