# Empty compiler generated dependencies file for bench_constraints_impact.
# This may be replaced when dependencies are built.
