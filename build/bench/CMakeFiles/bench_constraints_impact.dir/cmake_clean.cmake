file(REMOVE_RECURSE
  "CMakeFiles/bench_constraints_impact.dir/bench_constraints_impact.cc.o"
  "CMakeFiles/bench_constraints_impact.dir/bench_constraints_impact.cc.o.d"
  "bench_constraints_impact"
  "bench_constraints_impact.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_constraints_impact.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
