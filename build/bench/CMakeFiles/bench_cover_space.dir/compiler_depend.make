# Empty compiler generated dependencies file for bench_cover_space.
# This may be replaced when dependencies are built.
