file(REMOVE_RECURSE
  "CMakeFiles/bench_cover_space.dir/bench_cover_space.cc.o"
  "CMakeFiles/bench_cover_space.dir/bench_cover_space.cc.o.d"
  "bench_cover_space"
  "bench_cover_space.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_cover_space.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
