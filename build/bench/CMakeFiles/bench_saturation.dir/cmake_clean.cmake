file(REMOVE_RECURSE
  "CMakeFiles/bench_saturation.dir/bench_saturation.cc.o"
  "CMakeFiles/bench_saturation.dir/bench_saturation.cc.o.d"
  "bench_saturation"
  "bench_saturation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_saturation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
