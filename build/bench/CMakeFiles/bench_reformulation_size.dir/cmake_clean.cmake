file(REMOVE_RECURSE
  "CMakeFiles/bench_reformulation_size.dir/bench_reformulation_size.cc.o"
  "CMakeFiles/bench_reformulation_size.dir/bench_reformulation_size.cc.o.d"
  "bench_reformulation_size"
  "bench_reformulation_size.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_reformulation_size.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
