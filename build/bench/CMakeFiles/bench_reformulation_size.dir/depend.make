# Empty dependencies file for bench_reformulation_size.
# This may be replaced when dependencies are built.
